#include "obs/rollup.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace rb::obs {

namespace {

std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

const char* kind_name(WindowedSeries::Kind k) noexcept {
  switch (k) {
    case WindowedSeries::Kind::kCounter: return "counter";
    case WindowedSeries::Kind::kGauge: return "gauge";
    case WindowedSeries::Kind::kValue: return "value";
  }
  return "value";
}

}  // namespace

WindowedSeries::WindowedSeries(std::int64_t window, Kind kind)
    : window_(window), kind_(kind) {
  if (window_ <= 0) throw std::invalid_argument{"window width must be > 0"};
}

void WindowedSeries::record(std::int64_t ts, double v) noexcept {
  const std::int64_t idx = floor_div(ts, window_);
  auto [it, inserted] = buckets_.try_emplace(idx);
  WindowStats& w = it->second;
  if (inserted) {
    w.start = idx * window_;
    w.min = v;
    w.max = v;
  } else {
    w.min = std::min(w.min, v);
    w.max = std::max(w.max, v);
  }
  ++w.count;
  w.sum += v;
  w.last = v;
}

std::vector<WindowStats> WindowedSeries::windows() const {
  std::vector<WindowStats> out;
  if (buckets_.empty()) return out;
  const std::int64_t first = buckets_.begin()->first;
  const std::int64_t last = buckets_.rbegin()->first;
  out.reserve(static_cast<std::size_t>(last - first + 1));
  auto it = buckets_.begin();
  for (std::int64_t idx = first; idx <= last; ++idx) {
    if (it != buckets_.end() && it->first == idx) {
      out.push_back(it->second);
      ++it;
    } else {
      WindowStats gap;
      gap.start = idx * window_;
      out.push_back(gap);
    }
  }
  return out;
}

double WindowedSeries::sum_range(std::int64_t from, std::int64_t to) const {
  if (to <= from) return 0.0;
  const std::int64_t lo = floor_div(from, window_);
  const std::int64_t hi = floor_div(to - 1, window_);
  double total = 0.0;
  for (auto it = buckets_.lower_bound(lo);
       it != buckets_.end() && it->first <= hi; ++it) {
    total += static_cast<double>(it->second.count);
  }
  return total;
}

Rollup::Rollup(std::int64_t window) : window_(window) {
  if (window_ <= 0) throw std::invalid_argument{"window width must be > 0"};
}

WindowedSeries& Rollup::find_or_create(std::string_view name,
                                       WindowedSeries::Kind kind) {
  auto it = series_.find(std::string{name});
  if (it != series_.end()) {
    if (it->second.kind() != kind) {
      throw std::invalid_argument{"rollup series kind mismatch: " +
                                  std::string{name}};
    }
    return it->second;
  }
  auto [ins, ok] =
      series_.emplace(std::string{name}, WindowedSeries{window_, kind});
  return ins->second;
}

WindowedSeries& Rollup::counter(std::string_view name) {
  return find_or_create(name, WindowedSeries::Kind::kCounter);
}
WindowedSeries& Rollup::gauge(std::string_view name) {
  return find_or_create(name, WindowedSeries::Kind::kGauge);
}
WindowedSeries& Rollup::value(std::string_view name) {
  return find_or_create(name, WindowedSeries::Kind::kValue);
}

std::vector<std::string> Rollup::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

const WindowedSeries* Rollup::find(std::string_view name) const {
  auto it = series_.find(std::string{name});
  return it == series_.end() ? nullptr : &it->second;
}

std::string Rollup::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("window").value(static_cast<std::int64_t>(window_));
  w.key("series").begin_array();
  for (const auto& [name, s] : series_) {
    w.begin_object();
    w.key("name").value(name);
    w.key("kind").value(kind_name(s.kind()));
    w.key("windows").begin_array();
    for (const WindowStats& ws : s.windows()) {
      w.begin_object();
      w.key("start").value(ws.start);
      w.key("count").value(static_cast<std::uint64_t>(ws.count));
      w.key("sum").value(ws.sum);
      w.key("min").value(ws.min);
      w.key("max").value(ws.max);
      w.key("last").value(ws.last);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void Rollup::clear() {
  for (auto& [name, s] : series_) s.clear();
}

/// --- AlertEngine ------------------------------------------------------------

AlertEngine::AlertEngine(AlertParams params)
    : params_(std::move(params)),
      good_(params_.window, WindowedSeries::Kind::kCounter),
      bad_(params_.window, WindowedSeries::Kind::kCounter) {
  if (params_.objective <= 0.0 || params_.objective >= 1.0) {
    throw std::invalid_argument{"SLO objective must be in (0, 1)"};
  }
  for (const BurnRateRule& r : params_.rules) {
    if (r.short_windows == 0 || r.long_windows < r.short_windows) {
      throw std::invalid_argument{"burn-rate rule windows misconfigured"};
    }
  }
}

void AlertEngine::record_good(std::int64_t ts, std::uint64_t n) noexcept {
  for (std::uint64_t i = 0; i < n; ++i) good_.record(ts, 1.0);
}

void AlertEngine::record_bad(std::int64_t ts, std::uint64_t n) noexcept {
  for (std::uint64_t i = 0; i < n; ++i) bad_.record(ts, 1.0);
}

double AlertEngine::burn_rate(std::int64_t ts,
                              std::size_t lookback_windows) const {
  const std::int64_t w = params_.window;
  const std::int64_t end = (floor_div(ts, w) + 1) * w;
  const std::int64_t begin =
      end - static_cast<std::int64_t>(lookback_windows) * w;
  const double good = good_.sum_range(begin, end);
  const double bad = bad_.sum_range(begin, end);
  const double total = good + bad;
  if (total <= 0.0) return 0.0;
  const double budget = 1.0 - params_.objective;
  return (bad / total) / budget;
}

std::vector<Alert> AlertEngine::alerts(std::int64_t horizon) const {
  std::vector<Alert> out;
  const std::int64_t w = params_.window;
  const std::int64_t last_window = floor_div(horizon, w);
  for (const BurnRateRule& rule : params_.rules) {
    bool active = false;
    std::size_t active_idx = 0;
    for (std::int64_t idx = 0; idx <= last_window; ++idx) {
      const std::int64_t end = (idx + 1) * w;
      if (end > horizon) break;  // evaluate closed windows only
      const std::int64_t short_begin =
          end - static_cast<std::int64_t>(rule.short_windows) * w;
      const std::int64_t long_begin =
          end - static_cast<std::int64_t>(rule.long_windows) * w;
      const double short_good = good_.sum_range(short_begin, end);
      const double short_bad = bad_.sum_range(short_begin, end);
      const double long_good = good_.sum_range(long_begin, end);
      const double long_bad = bad_.sum_range(long_begin, end);
      const double budget = 1.0 - params_.objective;
      const double short_total = short_good + short_bad;
      const double long_total = long_good + long_bad;
      const double burn_short =
          short_total > 0.0 ? (short_bad / short_total) / budget : 0.0;
      const double burn_long =
          long_total > 0.0 ? (long_bad / long_total) / budget : 0.0;

      if (!active) {
        if (long_total >= static_cast<double>(params_.min_events) &&
            burn_short >= rule.burn_threshold &&
            burn_long >= rule.burn_threshold) {
          Alert a;
          a.rule = rule.name;
          a.fired_at = end;
          a.burn_short = burn_short;
          a.burn_long = burn_long;
          out.push_back(std::move(a));
          active = true;
          active_idx = out.size() - 1;
        }
      } else if (burn_short < rule.burn_threshold) {
        out[active_idx].cleared_at = end;
        active = false;
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Alert& a, const Alert& b) {
                     return a.fired_at < b.fired_at;
                   });
  return out;
}

void AlertEngine::clear() {
  good_.clear();
  bad_.clear();
}

}  // namespace rb::obs

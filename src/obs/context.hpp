#pragma once
// Causal request tracing: the layer that answers "which layer made THIS
// request slow?".
//
// The flat TraceRecorder (trace.hpp) emits uncorrelated per-component spans;
// this module adds causality. A TraceContext (trace_id + current span_id)
// is stamped on a request at the front door and propagated with it through
// attempts, hedges and retries into replica queues, the network layer and
// storage reads. Every instrumented layer emits a CausalSpan parented to the
// context it received, so each request yields one span *tree* whose segments
// carry a typed meaning (queue / service / network / retry-backoff /
// hedge-wait / storage).
//
// Keeping every tree would be both expensive and useless — the interesting
// trees are the tail. The RequestTracer therefore does tail-based exemplar
// sampling: when a trace finishes, its critical-path decomposition is
// computed and the compact (latency, decomposition) pair is kept for every
// request, but the full span tree is retained only when the request failed,
// violated the latency threshold, or ranks among the slowest N seen so far
// (a bounded slowest-first reservoir). Retained trees are exemplars: their
// trace_ids can be linked into latency-histogram buckets
// (LatencyHistogram::observe_exemplar) and their trees exported as Chrome
// trace JSON (export_chrome), where every span carries span_id /
// parent_span_id args a validator can check for referential integrity.
//
// The critical-path analyzer decomposes end-to-end latency using the tree
// structure: all retry backoffs are serial on the path; the *winning*
// attempt (marked via mark_won) contributes its network, queue and service
// children; a winning hedge additionally charges the hedge-wait that
// preceded it. Whatever is left (scheduling slack, abandoned waves that
// delayed the retry) is "other". band_summary() aggregates the decomposition
// per latency-percentile band, which is how a bench states "p999 is 80%
// service time on the gray replica".
//
// Like the other obs pieces this module sits below rb_sim: timestamps are
// plain int64 numbers (the serving plane passes picoseconds of sim time).
// Disabled (the default), every call site costs one relaxed atomic load.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace rb::obs {

/// The causal coordinates a request carries through the stack. `span_id` is
/// the span new child work should parent to (the root request span at the
/// front door, the attempt span inside a replica, the service span inside a
/// storage read). A default-constructed context is inactive and every
/// tracer call on it is a no-op, so untraced requests cost nothing.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool active() const noexcept { return trace_id != 0; }
};

/// Typed meaning of a span — what the critical-path analyzer keys on.
enum class Segment : std::uint8_t {
  kRequest,    // the root span, one per request
  kAttempt,    // one failover attempt (or hedge) of a wave
  kNetwork,    // fabric traversal (gateway<->replica, or a net flow)
  kQueue,      // waiting in a replica's bounded queue
  kService,    // executing in a replica's service batch
  kBackoff,    // retry backoff between waves
  kHedgeWait,  // waiting for the hedge delay before duplicating
  kStorage,    // LSM read under a service span
  kOther,
};

const char* to_string(Segment s) noexcept;

struct CausalSpan {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root (no parent)
  Segment segment = Segment::kOther;
  std::string name;
  std::int64_t start_ps = 0;
  /// -1 while open. Spans still open when their trace finishes (zombie
  /// attempts whose response never came) are clamped to the finish time.
  std::int64_t end_ps = -1;
  /// Free-form numeric annotation: replica id for attempt/queue/service
  /// spans, flow id for network spans, sstable probes for storage spans.
  std::int64_t ref = -1;
  /// The attempt whose response resolved the request.
  bool won = false;

  std::int64_t duration_ps() const noexcept {
    return end_ps < start_ps ? 0 : end_ps - start_ps;
  }
};

/// How a traced request terminated (mirrors serve::RequestOutcome without
/// depending on the serving plane).
enum class TraceOutcome : std::uint8_t { kCompleted, kFailed, kRejected };

const char* to_string(TraceOutcome o) noexcept;

/// Per-request critical-path decomposition, picoseconds per segment.
/// total_ps == queue + service + network + backoff + hedge_wait + other.
struct CriticalPath {
  std::int64_t total_ps = 0;
  std::int64_t queue_ps = 0;
  std::int64_t service_ps = 0;
  std::int64_t network_ps = 0;
  std::int64_t backoff_ps = 0;
  std::int64_t hedge_wait_ps = 0;
  std::int64_t other_ps = 0;

  /// Fraction of total attributed to `s` (0 when total is 0 or `s` is not a
  /// decomposed segment).
  double share(Segment s) const noexcept;
};

/// A retained span tree plus its verdict.
struct ExemplarTrace {
  std::uint64_t trace_id = 0;
  std::string name;
  std::int64_t start_ps = 0;
  std::int64_t finish_ps = 0;
  TraceOutcome outcome = TraceOutcome::kCompleted;
  CriticalPath path;
  std::vector<CausalSpan> spans;  // record order; [0] is the root span
};

/// Tail-sampling policy: which finished traces keep their full tree.
struct ExemplarParams {
  /// Reservoir capacity. When full, the fastest retained trace is evicted
  /// for a slower newcomer (failures count as slowest-of-all).
  std::size_t max_exemplars = 32;
  /// A completed request slower than this (seconds) always qualifies;
  /// 0 = only the slowest-N reservoir and failures qualify. Set this to the
  /// SLO latency to retain exactly the SLO-violating trees.
  double latency_threshold_s = 0.0;
  /// Failed/rejected requests always qualify for retention.
  bool keep_failures = true;
};

/// Aggregated decomposition of one latency-percentile band.
struct BandDecomposition {
  const char* band = "";     // "p0-50", "p50-90", ...
  double lo_pct = 0.0;       // band covers [lo_pct, hi_pct) of requests
  double hi_pct = 0.0;
  std::uint64_t count = 0;
  double mean_latency_s = 0.0;
  /// Duration-weighted segment shares over the band (sum <= 1; the
  /// remainder is kOther).
  double queue_share = 0.0;
  double service_share = 0.0;
  double network_share = 0.0;
  double backoff_share = 0.0;
  double hedge_wait_share = 0.0;
  double other_share = 0.0;
};

class RequestTracer {
 public:
  RequestTracer() = default;
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  void set_params(const ExemplarParams& params);

  /// Open a new trace whose root span starts at `ts_ps`. Returns the root
  /// context (trace_id + root span id), or an inactive context when the
  /// tracer is disabled.
  TraceContext start_trace(std::string_view name, std::int64_t ts_ps);

  /// Open a child span under `parent`. Returns the span id (0 when the
  /// tracer is disabled, the parent is inactive, or the trace is unknown —
  /// e.g. already finished). Children of a returned 0 are silently dropped.
  std::uint64_t begin_span(const TraceContext& parent, Segment segment,
                           std::string_view name, std::int64_t ts_ps,
                           std::int64_t ref = -1);

  /// Close an open span. Unknown trace/span ids are ignored (responses for
  /// already-finished requests race their trace teardown by design).
  void end_span(std::uint64_t trace_id, std::uint64_t span_id,
                std::int64_t ts_ps);

  /// Record an already-closed span in one call.
  std::uint64_t add_span(const TraceContext& parent, Segment segment,
                         std::string_view name, std::int64_t start_ps,
                         std::int64_t end_ps, std::int64_t ref = -1);

  /// Mark the attempt span whose response resolved the request.
  void mark_won(std::uint64_t trace_id, std::uint64_t span_id);

  /// Finish a trace: clamp still-open spans to `ts_ps`, compute the
  /// critical path, record the compact decomposition, and run the exemplar
  /// sampler. Returns true when the full tree was retained.
  bool finish(std::uint64_t trace_id, std::int64_t ts_ps,
              TraceOutcome outcome);

  /// Number of traces finished so far.
  std::size_t finished() const;
  /// Retained exemplar trees, slowest first.
  std::vector<ExemplarTrace> exemplars() const;
  /// Critical-path decomposition aggregated per latency-percentile band
  /// (p0-50, p50-90, p90-99, p99-99.9, p99.9-100) over every finished
  /// trace. Empty when nothing finished.
  std::vector<BandDecomposition> band_summary() const;

  /// Export every exemplar tree into `recorder` as complete ('X') spans on
  /// per-segment tracks ("trace.queue", "trace.service", ...). Each span
  /// carries trace_id / span_id / parent_span_id args, so a validator can
  /// assert that every referenced parent was emitted.
  void export_chrome(TraceRecorder& recorder) const;

  void clear();

  static RequestTracer& global();

 private:
  struct LiveTrace {
    std::string name;
    std::int64_t start_ps = 0;
    std::vector<CausalSpan> spans;
    std::map<std::uint64_t, std::size_t> span_index;
  };
  struct FinishedRecord {
    double latency_s = 0.0;
    CriticalPath path;
  };

  static CriticalPath critical_path(const LiveTrace& t, std::int64_t total);
  bool retain(double latency_s, TraceOutcome outcome) const;

  mutable std::mutex mutex_;
  ExemplarParams params_;
  std::map<std::uint64_t, LiveTrace> live_;
  std::vector<FinishedRecord> records_;
  std::vector<ExemplarTrace> exemplars_;
  std::uint64_t next_trace_ = 1;
  std::uint64_t next_span_ = 1;
  std::atomic<bool> enabled_{false};
};

}  // namespace rb::obs

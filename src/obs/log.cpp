#include "obs/log.hpp"

#include <iostream>
#include <mutex>

namespace rb::obs {

namespace {
std::mutex g_log_mutex;
std::atomic<LogSink> g_sink{nullptr};
}  // namespace

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_sink_for_testing(LogSink sink) noexcept {
  g_sink.store(sink, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component,
              std::string_view msg) {
  if (level < log_level() || level == LogLevel::kOff) return;
  std::string line;
  line.reserve(component.size() + msg.size() + 16);
  line += '[';
  line += log_level_name(level);
  line += "] ";
  line += component;
  line += ": ";
  line += msg;
  const std::scoped_lock lock{g_log_mutex};
  if (const LogSink sink = g_sink.load(std::memory_order_relaxed)) {
    sink(line);
  } else {
    std::cerr << line << '\n';
  }
}

void Logger::log(LogLevel level, std::string_view msg) const {
  if (!should_log(level)) return;
  if (enabled()) {
    Registry::global()
        .counter("log_lines",
                 {{"component", component_},
                  {"level", std::string{log_level_name(level)}}})
        .add();
  }
  log_line(level, component_, msg);
}

}  // namespace rb::obs

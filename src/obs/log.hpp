#pragma once
// Leveled, component-tagged logging for the whole stack. This is the single
// implementation behind rb::sim's legacy logging API and the per-component
// `Logger` objects used by net/sched/faults.
//
// Thread-safety: the global level is a std::atomic (safe to mutate while
// other threads log) and every emitted line is serialized under one mutex,
// so concurrent dataflow workers can never interleave partial lines.
//
// Logs and metrics cannot drift apart: every line a `Logger` emits also
// bumps the `log_lines` counter labeled {component, level} in the global
// metrics registry (when obs::enabled()), so "how many WARN lines did net
// print" is a queryable metric, not a grep.

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace rb::obs {

enum class LogLevel : int { kDebug, kInfo, kWarning, kError, kOff };

namespace detail {
inline std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
}  // namespace detail

/// Global minimum level. Safe to call from any thread at any time.
inline void set_log_level(LogLevel level) noexcept {
  detail::g_log_level.store(level, std::memory_order_relaxed);
}
inline LogLevel log_level() noexcept {
  return detail::g_log_level.load(std::memory_order_relaxed);
}

std::string_view log_level_name(LogLevel level) noexcept;

/// Emit one line ("[LEVEL] component: msg") to the sink if `level` passes
/// the threshold. Lines are serialized; never interleaved.
void log_line(LogLevel level, std::string_view component,
              std::string_view msg);

/// Redirect log output for tests (nullptr restores stderr). The sink is
/// invoked with the fully-formatted line, under the log mutex.
using LogSink = void (*)(std::string_view line);
void set_log_sink_for_testing(LogSink sink) noexcept;

/// A named component's log handle. Cheap to construct; typically one
/// per subsystem (e.g. `Logger{"net"}`). Each emitted line bumps the
/// corresponding `log_lines{component,level}` counter.
class Logger {
 public:
  explicit Logger(std::string component) : component_{std::move(component)} {}

  const std::string& component() const noexcept { return component_; }

  bool should_log(LogLevel level) const noexcept {
    return level >= log_level() && level != LogLevel::kOff;
  }

  void log(LogLevel level, std::string_view msg) const;

  /// Stream-style: logger.info() << "flow " << id << " rerouted";
  /// Suppressed levels skip formatting entirely (no ostringstream work).
  class Stream {
   public:
    Stream(const Logger& logger, LogLevel level)
        : logger_{&logger}, level_{level},
          active_{logger.should_log(level)} {}
    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;
    ~Stream() {
      if (active_) logger_->log(level_, buf_.str());
    }

    template <typename T>
    Stream& operator<<(const T& value) {
      if (active_) buf_ << value;
      return *this;
    }

   private:
    const Logger* logger_;
    LogLevel level_;
    bool active_;
    std::ostringstream buf_;
  };

  Stream debug() const { return Stream{*this, LogLevel::kDebug}; }
  Stream info() const { return Stream{*this, LogLevel::kInfo}; }
  Stream warn() const { return Stream{*this, LogLevel::kWarning}; }
  Stream error() const { return Stream{*this, LogLevel::kError}; }

 private:
  std::string component_;
};

}  // namespace rb::obs

#pragma once
// Streaming time-series rollups and SLO burn-rate alerting.
//
// The Registry (metrics.hpp) answers "how much, total?"; this module answers
// "how much, *when*?" — the question every control loop (alerting today,
// autoscaling next) actually asks. A WindowedSeries buckets observations
// into fixed-width windows of the caller's clock (the serving plane passes
// sim-time picoseconds) keeping count/sum/min/max/last per window; a Rollup
// is a named registry of such series with JSON export.
//
// On top sits the AlertEngine, implementing Google-SRE-style multi-window
// multi-burn-rate alerting over an SLO error budget. The caller feeds it
// good/bad events; burn rate over a lookback is
//
//     burn = (bad / (good + bad)) / (1 - objective)
//
// i.e. 1.0 = consuming the error budget exactly at the sustainable rate. A
// rule fires when BOTH its short and long lookbacks burn above the
// threshold (the long window proves the problem is real, the short window
// proves it is *still* happening — that combination is what makes the alert
// clear quickly after repair), and clears when the short-window burn drops
// back below. Alerts are typed, timestamped values a bench or autoscaler
// can query — not log lines.
//
// Evaluation is a deterministic pure replay over closed windows, so
// identically-seeded runs produce identical alert timelines (tested).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rb::obs {

/// Aggregates of one time window of one series.
struct WindowStats {
  std::int64_t start = 0;  // window start, caller clock units
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// One named time series bucketed into fixed-width windows.
class WindowedSeries {
 public:
  enum class Kind : std::uint8_t {
    kCounter,  // sum of deltas per window (events/window)
    kGauge,    // last-write-wins level per window
    kValue,    // distribution per window (latencies): count/sum/min/max
  };

  WindowedSeries(std::int64_t window, Kind kind);

  void record(std::int64_t ts, double v) noexcept;

  Kind kind() const noexcept { return kind_; }
  std::int64_t window() const noexcept { return window_; }
  std::size_t window_count() const noexcept { return buckets_.size(); }

  /// Dense snapshot from the first to the last touched window; windows with
  /// no observations appear with count 0 (a gap in a counter series means
  /// rate 0, and the alert math must see it).
  std::vector<WindowStats> windows() const;

  /// Sum of `count` (kCounter: total events) over windows intersecting
  /// [from, to).
  double sum_range(std::int64_t from, std::int64_t to) const;

  void clear() { buckets_.clear(); }

 private:
  std::int64_t window_;
  Kind kind_;
  std::map<std::int64_t, WindowStats> buckets_;  // key = window index
};

/// Named registry of windowed series sharing one window width.
class Rollup {
 public:
  explicit Rollup(std::int64_t window);

  WindowedSeries& counter(std::string_view name);
  WindowedSeries& gauge(std::string_view name);
  WindowedSeries& value(std::string_view name);

  std::int64_t window() const noexcept { return window_; }
  std::vector<std::string> names() const;
  const WindowedSeries* find(std::string_view name) const;

  /// {"window":..., "series":[{name, kind, windows:[{start,count,sum,...}]}]}
  std::string to_json() const;

  void clear();

 private:
  WindowedSeries& find_or_create(std::string_view name,
                                 WindowedSeries::Kind kind);

  std::int64_t window_;
  std::map<std::string, WindowedSeries> series_;
};

/// --- Burn-rate alerting -----------------------------------------------------

/// One multi-window burn-rate rule: fire when both the short and the long
/// lookback burn the error budget faster than `burn_threshold`.
struct BurnRateRule {
  std::string name = "page";
  double burn_threshold = 10.0;   // x the sustainable burn rate
  std::size_t short_windows = 2;  // lookback lengths, in rollup windows
  std::size_t long_windows = 8;
};

struct AlertParams {
  double objective = 0.999;  // SLO success objective; budget = 1 - objective
  std::int64_t window = 0;   // window width, caller clock units (required)
  /// Ignore lookbacks with fewer total events than this (startup noise).
  std::uint64_t min_events = 20;
  std::vector<BurnRateRule> rules;
};

/// One firing of a rule. `cleared_at` is -1 while still active at the end of
/// the evaluated horizon.
struct Alert {
  std::string rule;
  std::int64_t fired_at = 0;
  std::int64_t cleared_at = -1;
  double burn_short = 0.0;  // burn rates at fire time
  double burn_long = 0.0;

  bool active() const noexcept { return cleared_at < 0; }
};

class AlertEngine {
 public:
  explicit AlertEngine(AlertParams params);

  /// Record the outcome of one (or `n`) requests at time `ts`.
  void record_good(std::int64_t ts, std::uint64_t n = 1) noexcept;
  void record_bad(std::int64_t ts, std::uint64_t n = 1) noexcept;

  /// Replay all closed windows up to `horizon` and return the alert
  /// timeline, ordered by fire time. Pure: calling twice returns the same
  /// result; more data extends it.
  std::vector<Alert> alerts(std::int64_t horizon) const;

  /// Burn rate over the last `lookback_windows` windows ending at the
  /// window containing `ts` (diagnostics / tests).
  double burn_rate(std::int64_t ts, std::size_t lookback_windows) const;

  const AlertParams& params() const noexcept { return params_; }

  void clear();

 private:
  AlertParams params_;
  WindowedSeries good_;
  WindowedSeries bad_;
};

}  // namespace rb::obs

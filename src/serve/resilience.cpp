#include "serve/resilience.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace rb::serve {

namespace {

struct ResilienceMetrics {
  obs::Counter* retries_budgeted;
  obs::Counter* breaker_open;
  obs::Counter* hedges_issued;
  obs::Counter* hedges_won;
  obs::Counter* deadline_drops;

  static ResilienceMetrics& get() {
    auto& r = obs::Registry::global();
    static ResilienceMetrics m{&r.counter("serve.retries_budgeted"),
                               &r.counter("serve.breaker_open"),
                               &r.counter("serve.hedges_issued"),
                               &r.counter("serve.hedges_won"),
                               &r.counter("serve.deadline_drops")};
    return m;
  }
};

}  // namespace

namespace resilience_metrics {

void retries_budgeted() {
  if (obs::enabled()) ResilienceMetrics::get().retries_budgeted->add();
}
void deadline_drop() {
  if (obs::enabled()) ResilienceMetrics::get().deadline_drops->add();
}
void breaker_open() {
  if (obs::enabled()) ResilienceMetrics::get().breaker_open->add();
}
void hedge_issued() {
  if (obs::enabled()) ResilienceMetrics::get().hedges_issued->add();
}
void hedge_won() {
  if (obs::enabled()) ResilienceMetrics::get().hedges_won->add();
}

}  // namespace resilience_metrics

/// --- RetryBudget --------------------------------------------------------

RetryBudget::RetryBudget(const RetryBudgetParams& params)
    : params_{params}, tokens_{params.burst} {}

void RetryBudget::on_issued() noexcept {
  if (!params_.enabled) return;
  tokens_ = std::min(params_.burst, tokens_ + params_.ratio);
}

bool RetryBudget::try_spend() noexcept {
  if (!params_.enabled) return true;
  if (tokens_ < 1.0) {
    ++denied_;
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

/// --- CircuitBreaker -----------------------------------------------------

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const BreakerParams& params)
    : params_{params} {}

void CircuitBreaker::trip(sim::SimTime now) {
  state_ = BreakerState::kOpen;
  open_until_ = now + params_.open_cooldown;
  consecutive_failures_ = 0;
  probes_left_ = 0;
  probe_successes_ = 0;
  ++opens_;
  resilience_metrics::breaker_open();
}

bool CircuitBreaker::allow(sim::SimTime now) {
  if (!params_.enabled) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < open_until_) {
        ++denials_;
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      probes_left_ = params_.half_open_probes;
      probe_successes_ = 0;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probes_left_ <= 0) {
        ++denials_;
        return false;
      }
      --probes_left_;
      return true;
  }
  return true;
}

void CircuitBreaker::on_success(double latency_s, sim::SimTime now) {
  if (!params_.enabled) return;
  // EWMA over success latencies only: a killed attempt has no latency, and
  // rejections are instant — neither says anything about service speed.
  ewma_s_ = ewma_samples_ == 0
                ? latency_s
                : params_.latency_alpha * latency_s +
                      (1.0 - params_.latency_alpha) * ewma_s_;
  ++ewma_samples_;
  const bool slow = params_.latency_threshold_s > 0.0 &&
                    latency_s > params_.latency_threshold_s;
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      if (params_.latency_threshold_s > 0.0 &&
          ewma_samples_ >= params_.min_latency_samples &&
          ewma_s_ > params_.latency_threshold_s) {
        trip(now);
        // The gray replica is being avoided; stale speed estimates must not
        // instantly re-trip the breaker when probes come back fast.
        ewma_s_ = 0.0;
        ewma_samples_ = 0;
      }
      break;
    case BreakerState::kHalfOpen:
      if (slow) {
        // The probe came back, but late: still gray. Reopen.
        trip(now);
        ewma_s_ = 0.0;
        ewma_samples_ = 0;
        break;
      }
      if (++probe_successes_ >= params_.half_open_probes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // Late response from an attempt issued before the trip; ignore.
      break;
  }
}

void CircuitBreaker::on_failure(sim::SimTime now) {
  if (!params_.enabled) return;
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= params_.failure_threshold) trip(now);
      break;
    case BreakerState::kHalfOpen:
      trip(now);  // one failed probe is enough
      break;
    case BreakerState::kOpen:
      break;
  }
}

/// --- HedgeDelayTracker --------------------------------------------------

HedgeDelayTracker::HedgeDelayTracker(const HedgeParams& params)
    : params_{params} {
  ring_.reserve(std::max<std::size_t>(params_.window, 1));
}

void HedgeDelayTracker::record(double latency_s) {
  const std::size_t window = std::max<std::size_t>(params_.window, 1);
  if (ring_.size() < window) {
    ring_.push_back(latency_s);
  } else {
    ring_[next_] = latency_s;
  }
  next_ = (next_ + 1) % window;
  ++count_;
}

sim::SimTime HedgeDelayTracker::delay() const {
  if (count_ < params_.min_samples || ring_.empty()) return params_.min_delay;
  // Recompute at most once per window/8 new samples: nth_element over the
  // window is cheap, but not per-attempt cheap.
  const std::size_t stride = std::max<std::size_t>(ring_.size() / 8, 1);
  if (cached_at_ == 0 || count_ - cached_at_ >= stride) {
    std::vector<double> scratch{ring_};
    const double q = std::clamp(params_.quantile, 0.0, 100.0) / 100.0;
    const auto rank = static_cast<std::size_t>(
        std::min<double>(std::floor(q * static_cast<double>(scratch.size())),
                         static_cast<double>(scratch.size() - 1)));
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                     scratch.end());
    const double at_rank = scratch[rank];
    cached_delay_ = std::max(params_.min_delay, sim::from_seconds(at_rank));
    cached_at_ = count_;
  }
  return cached_delay_;
}

}  // namespace rb::serve

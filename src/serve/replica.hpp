#pragma once
// One replica of the serving plane: an LsmStore behind a bounded FIFO
// request queue with batched service.
//
// Service model (the node-layer "roofline/service-time machinery"): a batch
// of n requests costs one fixed per-batch overhead (request parsing, NIC
// doorbell, queue handoff) plus the roofline time of the per-request kernel
// scaled by n on the configured device (node::offload_time, so PCIe-attached
// devices also pay launch + transfer once per batch). Amortization is
// therefore explicit: per-request cost falls as batches fill, which is what
// creates the throughput plateau the admission-control knee sits on. A
// seeded lognormal jitter multiplies each batch time (device service_cv).
//
// Admission control: try_enqueue() refuses when the queue already holds
// `queue_limit` waiting requests — the caller turns that into a typed
// Overloaded rejection instead of letting queueing delay grow unboundedly.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/topology.hpp"
#include "node/device.hpp"
#include "node/roofline.hpp"
#include "serve/request.hpp"
#include "serve/ring.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "storage/lsm.hpp"

namespace rb::serve {

struct ReplicaParams {
  /// Waiting requests admitted beyond the in-service batch; 0 disables
  /// queueing entirely (every request must catch the server idle).
  std::size_t queue_limit = 64;
  /// Max requests folded into one service batch (>= 1).
  std::size_t batch_max = 8;
  /// Fixed cost per batch, amortized across its requests.
  sim::SimTime batch_overhead = 20 * sim::kMicrosecond;
  /// Device executing the per-request kernel (roofline service time).
  node::DeviceModel device;
  /// Roofline work of one request (scaled linearly by batch size).
  node::KernelProfile per_request{2.0e4, 6.0e4, 1.0, 512.0};
  storage::LsmOptions store;
};

/// How the replica finished with a request it had admitted.
enum class ReplicaOutcome : std::uint8_t {
  kServed,   // executed against the store
  kKilled,   // replica went down first; the front door may fail over
  kExpired,  // deadline passed while queued; dropped before costing service
};

class ReplicaServer {
 public:
  /// Fires at service-finish (kServed) or death (kKilled) time.
  using Completion = std::function<void(const Request&, ReplicaOutcome)>;

  ReplicaServer(sim::Simulator& sim, ReplicaId id, net::NodeId host,
                const ReplicaParams& params, std::uint64_t seed);

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  void on_complete(Completion fn) { completion_ = std::move(fn); }

  /// Admit a request, or refuse (admission control) when the queue is full
  /// or the replica is down. Admitted requests always reach the completion
  /// callback exactly once.
  bool try_enqueue(Request req);

  /// Host died: drop the in-service batch and the whole queue, reporting
  /// every victim as kKilled at the current time. No-op when already down.
  void set_down();
  /// Host repaired: resume accepting requests.
  void set_up();
  bool serving() const noexcept { return up_; }

  /// Gray failure: stretch every subsequent batch's service time by
  /// `factor` (>= 1; 1 restores full speed). The replica keeps accepting
  /// and answering — slowly — which is exactly what makes gray failures
  /// harder on callers than clean outages.
  void set_slowdown(double factor);
  double slowdown() const noexcept { return slowdown_; }

  ReplicaId id() const noexcept { return id_; }
  net::NodeId host() const noexcept { return host_; }
  std::size_t queue_depth() const noexcept {
    return queue_.size() + batch_.size();
  }

  storage::LsmStore& store() noexcept { return store_; }
  const storage::LsmStore& store() const noexcept { return store_; }

  std::uint64_t requests_served() const noexcept { return served_; }
  std::uint64_t requests_killed() const noexcept { return killed_; }
  /// Queued requests dropped because their deadline passed before service.
  std::uint64_t requests_expired() const noexcept { return expired_; }
  std::uint64_t batches() const noexcept { return batches_; }
  /// Distribution of batch sizes actually served (amortization evidence).
  const sim::RunningStats& batch_sizes() const noexcept { return batch_sizes_; }

  /// Ideal per-request service time at full batching — `(overhead +
  /// roofline(batch_max x kernel)) / batch_max`. The capacity planning
  /// number benches use to place their load sweeps.
  static sim::SimTime amortized_service_time(const ReplicaParams& params);

 private:
  void maybe_start_batch();
  void finish_batch(std::uint64_t generation);
  void execute(const Request& req, const obs::TraceContext& service_ctx);

  sim::Simulator* sim_;
  ReplicaId id_;
  net::NodeId host_;
  ReplicaParams params_;
  storage::LsmStore store_;
  sim::Rng rng_;
  Completion completion_;
  std::deque<Request> queue_;
  std::vector<Request> batch_;  // in service; empty when idle
  bool up_ = true;
  double slowdown_ = 1.0;
  sim::SimTime batch_started_ = 0;  // queue/service split for tracing
  /// Bumped by set_down() so a batch-finish event scheduled before the
  /// death is ignored when it fires.
  std::uint64_t generation_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t killed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t batches_ = 0;
  sim::RunningStats batch_sizes_;
};

}  // namespace rb::serve

#include "serve/replica.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/context.hpp"
#include "obs/metrics.hpp"

namespace rb::serve {

namespace {

node::KernelProfile scaled(const node::KernelProfile& per_request,
                           std::size_t n) {
  node::KernelProfile batch = per_request;
  const double k = static_cast<double>(n);
  batch.flops *= k;
  batch.bytes *= k;
  if (batch.pcie_bytes > 0.0) batch.pcie_bytes *= k;
  return batch;
}

obs::Gauge* queue_gauge(ReplicaId id) {
  return &obs::Registry::global().gauge(
      "serve.queue_depth", {{"replica", std::to_string(id)}});
}

}  // namespace

ReplicaServer::ReplicaServer(sim::Simulator& sim, ReplicaId id,
                             net::NodeId host, const ReplicaParams& params,
                             std::uint64_t seed)
    : sim_{&sim},
      id_{id},
      host_{host},
      params_{params},
      store_{params.store},
      rng_{seed} {
  if (params_.batch_max == 0)
    throw std::invalid_argument{"ReplicaServer: batch_max must be >= 1"};
  if (params_.batch_overhead < 0)
    throw std::invalid_argument{"ReplicaServer: negative batch_overhead"};
}

sim::SimTime ReplicaServer::amortized_service_time(
    const ReplicaParams& params) {
  const sim::SimTime batch =
      params.batch_overhead +
      node::offload_time(params.device,
                         scaled(params.per_request, params.batch_max));
  return batch / static_cast<sim::SimTime>(params.batch_max);
}

bool ReplicaServer::try_enqueue(Request req) {
  if (!up_) return false;
  if (queue_.size() >= params_.queue_limit && !batch_.empty()) return false;
  // An idle replica serves immediately; only a busy one queues.
  req.enqueued = sim_->now();
  auto& tracer = obs::RequestTracer::global();
  if (tracer.enabled() && req.trace.active()) {
    // Open the queue span NOW: if the gateway abandons this attempt while it
    // is still queued, the clamped span keeps the wait attributable to this
    // replica instead of vanishing into "other".
    req.queue_span =
        tracer.begin_span(req.trace, obs::Segment::kQueue, "queue",
                          req.enqueued, static_cast<std::int64_t>(id_));
  }
  queue_.push_back(std::move(req));
  if (obs::enabled())
    queue_gauge(id_)->set(static_cast<double>(queue_depth()));
  maybe_start_batch();
  return true;
}

void ReplicaServer::maybe_start_batch() {
  if (!up_ || !batch_.empty() || queue_.empty()) return;
  // Deadline propagation: drop expired queued work *before* costing service
  // — an answer nobody is waiting for must not occupy the device.
  std::vector<Request> dead;
  const sim::SimTime now = sim_->now();
  while (batch_.size() < params_.batch_max && !queue_.empty()) {
    Request req = std::move(queue_.front());
    queue_.pop_front();
    if (req.deadline > 0 && req.deadline <= now) {
      if (req.queue_span != 0) {
        obs::RequestTracer::global().end_span(req.trace.trace_id,
                                              req.queue_span, now);
      }
      dead.push_back(std::move(req));
    } else {
      batch_.push_back(std::move(req));
    }
  }
  expired_ += dead.size();
  if (batch_.empty()) {
    // Everything at the head was already dead; report and try again (the
    // recursion terminates: each round consumes queue entries).
    for (const Request& req : dead) {
      if (completion_) completion_(req, ReplicaOutcome::kExpired);
    }
    maybe_start_batch();
    return;
  }
  const std::size_t n = batch_.size();
  ++batches_;
  batch_sizes_.add(static_cast<double>(n));
  batch_started_ = now;

  // Amortized batch cost: fixed overhead + roofline time of n requests'
  // work, stretched by seeded lognormal jitter (device service_cv).
  sim::SimTime cost =
      params_.batch_overhead +
      node::offload_time(params_.device, scaled(params_.per_request, n));
  const double cv = std::max(params_.device.service_cv, 0.0);
  if (cv > 0.0) {
    const double s2 = std::log(1.0 + cv * cv);
    cost = static_cast<sim::SimTime>(
        static_cast<double>(cost) * rng_.lognormal(-s2 / 2.0, std::sqrt(s2)));
  }
  if (slowdown_ > 1.0) {
    cost = static_cast<sim::SimTime>(static_cast<double>(cost) * slowdown_);
  }
  const std::uint64_t generation = generation_;
  sim_->schedule_in(std::max<sim::SimTime>(cost, 1),
                    [this, generation] { finish_batch(generation); });
  // Report the expired requests only after the live batch is committed, so a
  // completion callback that re-enters (e.g. the front door resolving the
  // request) sees a consistent replica.
  for (const Request& req : dead) {
    if (completion_) completion_(req, ReplicaOutcome::kExpired);
  }
}

void ReplicaServer::finish_batch(std::uint64_t generation) {
  // A death between scheduling and firing already reported these requests
  // as killed; the stale event must do nothing.
  if (generation != generation_) return;
  std::vector<Request> done;
  done.swap(batch_);
  const sim::SimTime started = batch_started_;
  auto& tracer = obs::RequestTracer::global();
  for (const Request& req : done) {
    // Causal queue/service decomposition: the request waited from admission
    // to batch start, then occupied the device until now. Both spans parent
    // to the attempt span the dispatched copy carries.
    obs::TraceContext service_ctx;
    if (tracer.enabled() && req.trace.active()) {
      tracer.end_span(req.trace.trace_id, req.queue_span, started);
      const std::uint64_t service_span =
          tracer.begin_span(req.trace, obs::Segment::kService, "service",
                            started, static_cast<std::int64_t>(id_));
      service_ctx = obs::TraceContext{req.trace.trace_id, service_span};
    }
    execute(req, service_ctx);
    if (service_ctx.active()) {
      tracer.end_span(service_ctx.trace_id, service_ctx.span_id, sim_->now());
    }
    ++served_;
    if (completion_) completion_(req, ReplicaOutcome::kServed);
  }
  if (obs::enabled())
    queue_gauge(id_)->set(static_cast<double>(queue_depth()));
  maybe_start_batch();
}

void ReplicaServer::execute(const Request& req,
                            const obs::TraceContext& service_ctx) {
  if (req.op == OpKind::kPut) {
    store_.put(req.key, req.value);
  } else {
    // The result value is not propagated (clients in this simulation care
    // about latency, not payloads), but the lookup is real: bloom filters,
    // sstable probes and their counters all move — and with an active trace
    // the read emits a storage span under the service span.
    static_cast<void>(store_.get(req.key, service_ctx, batch_started_));
  }
}

void ReplicaServer::set_down() {
  if (!up_) return;
  up_ = false;
  ++generation_;  // invalidate any in-flight batch-finish event
  std::vector<Request> victims;
  victims.swap(batch_);
  for (Request& req : queue_) {
    // Batch victims' queue spans already closed at batch start; only the
    // still-queued ones are open and end at the kill.
    if (req.queue_span != 0) {
      obs::RequestTracer::global().end_span(req.trace.trace_id, req.queue_span,
                                            sim_->now());
    }
    victims.push_back(std::move(req));
  }
  queue_.clear();
  killed_ += victims.size();
  if (obs::enabled()) queue_gauge(id_)->set(0.0);
  for (const Request& req : victims) {
    if (completion_) completion_(req, ReplicaOutcome::kKilled);
  }
}

void ReplicaServer::set_up() {
  if (up_) return;
  up_ = true;
  maybe_start_batch();
}

void ReplicaServer::set_slowdown(double factor) {
  if (factor < 1.0)
    throw std::invalid_argument{"ReplicaServer: slowdown factor must be >= 1"};
  // Applies to batches started from now on; the in-service batch keeps the
  // cost it was scheduled with (its work was already dispatched).
  slowdown_ = factor;
}

}  // namespace rb::serve

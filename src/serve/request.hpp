#pragma once
// Request/response vocabulary of the serving plane.
//
// Every request ends in exactly one terminal state — completed, rejected
// (typed Overloaded: shed by admission control, never retried), or failed
// (all failover attempts exhausted). The SLO accountant's ledger invariant
// `completed + rejected + failed == issued` rests on this being a real
// partition, so the states live here, shared by replica, front door and
// accountant.

#include <cstdint>
#include <string>

#include "obs/context.hpp"
#include "sim/units.hpp"

namespace rb::serve {

enum class OpKind : std::uint8_t { kGet, kPut };

/// Why admission control refused a request. Currently only full queues shed
/// load, but rejections are typed so callers can branch without string
/// matching (and future policies — e.g. per-tenant quotas — extend here).
enum class Overloaded : std::uint8_t { kQueueFull };

/// Terminal state of one request.
enum class RequestOutcome : std::uint8_t { kCompleted, kRejected, kFailed };

struct Request {
  std::uint64_t id = 0;
  OpKind op = OpKind::kGet;
  std::string key;
  std::string value;          // payload for puts; empty for gets
  sim::SimTime issued = 0;    // arrival at the front door
  /// Absolute deadline propagated with the request; 0 = none. Replicas drop
  /// expired queued work before spending service time on it, and the front
  /// door never retries past it.
  sim::SimTime deadline = 0;
  int attempts = 0;           // failover attempts consumed so far
  /// Causal trace coordinates (inactive unless the RequestTracer is on).
  /// The front door stamps the root context at issue time; each dispatched
  /// copy carries its attempt's span so replica queue/service and storage
  /// work parent correctly. Not part of request identity.
  obs::TraceContext trace;
  /// Set by the replica at admission (queue-wait anchor for tracing).
  sim::SimTime enqueued = 0;
  /// Open causal queue span, begun at admission so a request abandoned while
  /// still queued (attempt timeout) keeps its wait attributable; closed at
  /// dequeue, kill, or expiry — or clamped when the trace finishes first.
  std::uint64_t queue_span = 0;
};

const char* to_string(RequestOutcome outcome) noexcept;
const char* to_string(Overloaded reason) noexcept;

}  // namespace rb::serve

#pragma once
// Request/response vocabulary of the serving plane.
//
// Every request ends in exactly one terminal state — completed, rejected
// (typed Overloaded: shed by admission control, never retried), or failed
// (all failover attempts exhausted). The SLO accountant's ledger invariant
// `completed + rejected + failed == issued` rests on this being a real
// partition, so the states live here, shared by replica, front door and
// accountant.

#include <cstdint>
#include <string>

#include "sim/units.hpp"

namespace rb::serve {

enum class OpKind : std::uint8_t { kGet, kPut };

/// Why admission control refused a request. Currently only full queues shed
/// load, but rejections are typed so callers can branch without string
/// matching (and future policies — e.g. per-tenant quotas — extend here).
enum class Overloaded : std::uint8_t { kQueueFull };

/// Terminal state of one request.
enum class RequestOutcome : std::uint8_t { kCompleted, kRejected, kFailed };

struct Request {
  std::uint64_t id = 0;
  OpKind op = OpKind::kGet;
  std::string key;
  std::string value;          // payload for puts; empty for gets
  sim::SimTime issued = 0;    // arrival at the front door
  /// Absolute deadline propagated with the request; 0 = none. Replicas drop
  /// expired queued work before spending service time on it, and the front
  /// door never retries past it.
  sim::SimTime deadline = 0;
  int attempts = 0;           // failover attempts consumed so far
};

const char* to_string(RequestOutcome outcome) noexcept;
const char* to_string(Overloaded reason) noexcept;

}  // namespace rb::serve

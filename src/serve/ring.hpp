#pragma once
// Consistent-hash ring with virtual nodes — the shard map of the serving
// plane. Keys hash onto a 64-bit ring; each replica node owns `vnodes`
// pseudo-random positions, and the arc ending at a position belongs to that
// position's node. A key's shard is the arc it lands on; its R owners are
// the first R *distinct* nodes clockwise from there.
//
// Two kinds of node removal, deliberately separate:
//  * remove_node() — membership change (decommission). Only the departed
//    node's arcs move, so ~1/N of keys change primary (the consistent-hash
//    guarantee; the property test pins it).
//  * set_up(id, false) — temporary ejection while a host is down. Ownership
//    is unchanged (the node still holds its data); lookups just skip it
//    until set_up(id, true). This is what replica failover uses.

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

namespace rb::serve {

using ReplicaId = std::uint32_t;

/// "No replica" sentinel (e.g. no live, breaker-admitted owner to send to).
inline constexpr ReplicaId kInvalidReplica = static_cast<ReplicaId>(-1);

/// Where a key lives: the shard (ring arc, identified by the owning vnode's
/// position) and the distinct owner nodes clockwise from it, primary first.
struct Placement {
  std::uint64_t shard = 0;
  std::vector<ReplicaId> replicas;
};

class HashRing {
 public:
  /// `vnodes_per_node` positions are claimed per node (>= 1).
  explicit HashRing(std::size_t vnodes_per_node = 64);

  /// Membership changes (reshard ~1/N of the key space).
  /// Throw std::invalid_argument on duplicate add / unknown remove.
  void add_node(ReplicaId id);
  void remove_node(ReplicaId id);

  /// Temporary ejection: a down node keeps its arcs but is skipped by
  /// live_replicas(). Throws std::invalid_argument on unknown id.
  void set_up(ReplicaId id, bool up);
  bool up(ReplicaId id) const;
  bool contains(ReplicaId id) const noexcept;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t vnode_count() const noexcept { return ring_.size(); }
  std::size_t vnodes_per_node() const noexcept { return vnodes_; }

  /// The key's shard and its first min(r, node_count) distinct owners,
  /// regardless of up/down state (ownership is a membership property).
  /// Throws std::logic_error on an empty ring.
  Placement replicas(std::string_view key, std::size_t r) const;

  /// First owner (replicas(key, 1)); throws std::logic_error when empty.
  ReplicaId primary(std::string_view key) const;

  /// The subset of replicas(key, r) that is currently up, in owner order.
  std::vector<ReplicaId> live_replicas(std::string_view key,
                                       std::size_t r) const;

  /// Position of a key on the ring (exposed for tests/diagnostics).
  static std::uint64_t key_position(std::string_view key) noexcept;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, ReplicaId> ring_;  // vnode position -> owner
  std::map<ReplicaId, bool> nodes_;          // member -> up?
};

}  // namespace rb::serve

#include "serve/frontdoor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace rb::serve {

namespace {

constexpr sim::Bytes kHeaderBytes = 64;  // request/response framing

std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FrontDoor::FrontDoor(sim::Simulator& sim, const net::Topology& topo,
                     const net::Router& router, const FrontDoorParams& params)
    : sim_{&sim},
      topo_{&topo},
      router_{&router},
      params_{params},
      ring_{params.vnodes_per_replica},
      rng_{params.seed},
      key_dist_{std::max<std::size_t>(params.key_universe, 1), params.zipf_s} {
  if (params_.key_universe == 0)
    throw std::invalid_argument{"FrontDoor: empty key universe"};
  if (params_.replication == 0)
    throw std::invalid_argument{"FrontDoor: replication must be >= 1"};
  if (params_.offered_qps <= 0.0)
    throw std::invalid_argument{"FrontDoor: offered_qps must be > 0"};
  if (params_.read_fraction < 0.0 || params_.read_fraction > 1.0)
    throw std::invalid_argument{"FrontDoor: read_fraction out of [0, 1]"};
  if (params_.diurnal_amplitude < 0.0 || params_.diurnal_amplitude >= 1.0)
    throw std::invalid_argument{
        "FrontDoor: diurnal_amplitude out of [0, 1)"};
  if (params_.max_attempts < 1)
    throw std::invalid_argument{"FrontDoor: max_attempts must be >= 1"};

  const auto hosts = topo_->nodes_of_kind(net::NodeKind::kHost);
  if (hosts.size() < 2)
    throw std::invalid_argument{
        "FrontDoor: topology needs >= 2 hosts (gateway + replicas)"};
  const std::size_t count =
      params_.replicas == 0 ? hosts.size() - 1 : params_.replicas;
  if (count + 1 > hosts.size())
    throw std::invalid_argument{
        "FrontDoor: fewer hosts than requested replicas"};
  gateway_ = hosts.front();
  replicas_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto id = static_cast<ReplicaId>(i);
    const net::NodeId host = hosts[i + 1];
    replicas_.push_back(std::make_unique<ReplicaServer>(
        *sim_, id, host, params_.replica, rng_()));
    replicas_.back()->on_complete(
        [this, id](const Request& req, ReplicaOutcome outcome) {
          replica_completed(req, outcome, id);
        });
    host_to_replica_.emplace(host, id);
    ring_.add_node(id);
  }
}

std::string FrontDoor::key_string(std::size_t index) const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "k%08zu", index);
  return buf;
}

void FrontDoor::preload() {
  const std::string value(params_.value_bytes, 'v');
  const std::size_t r = std::min(params_.replication, replicas_.size());
  for (std::size_t k = 0; k < params_.key_universe; ++k) {
    const std::string key = key_string(k);
    for (const ReplicaId id : ring_.replicas(key, r).replicas) {
      replicas_[id]->store().put(key, value);
    }
  }
}

void FrontDoor::start() {
  if (started_) return;
  started_ = true;
  schedule_next_arrival();
}

void FrontDoor::schedule_next_arrival() {
  // Poisson arrivals with a (slowly varying) diurnal rate: the next gap is
  // exponential at the instantaneous rate.
  double rate = params_.offered_qps;
  if (params_.diurnal_amplitude > 0.0) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(sim_->now()) /
                         static_cast<double>(params_.diurnal_period);
    rate *= 1.0 + params_.diurnal_amplitude * std::sin(phase);
  }
  const sim::SimTime gap = std::max<sim::SimTime>(
      sim::from_seconds(rng_.exponential(1.0 / rate)), 1);
  if (sim_->now() + gap >= params_.horizon) return;  // population stops
  sim_->schedule_in(gap, [this] {
    issue();
    schedule_next_arrival();
  });
}

Request FrontDoor::make_request() {
  Request req;
  req.id = next_request_id_++;
  req.issued = sim_->now();
  req.key = key_string(key_dist_(rng_));
  if (!rng_.chance(params_.read_fraction)) {
    req.op = OpKind::kPut;
    req.value.assign(params_.value_bytes, 'w');
  }
  return req;
}

void FrontDoor::issue() {
  Request req = make_request();
  slo_.on_issued(req);
  attempt(std::move(req));
}

void FrontDoor::attempt(Request req) {
  const std::size_t r = std::min(params_.replication, replicas_.size());
  const Placement placement = ring_.replicas(req.key, r);
  // Candidates: owners that are ring-live, whose host is up, and that are
  // serving. (Ownership never changes with up/down — only contactability.)
  std::vector<ReplicaId> live;
  live.reserve(placement.replicas.size());
  for (const ReplicaId id : placement.replicas) {
    if (ring_.up(id) && topo_->node_up(replicas_[id]->host()) &&
        replicas_[id]->serving()) {
      live.push_back(id);
    }
  }
  if (live.empty()) {
    attempt_failed(std::move(req));
    return;
  }
  // Puts go to the first live owner; gets spread across live owners by a
  // deterministic per-request rotation (retries move to the next one).
  std::size_t index = 0;
  if (req.op == OpKind::kGet) {
    index = static_cast<std::size_t>(
        (mix(req.id) + static_cast<std::uint64_t>(req.attempts)) %
        live.size());
  }
  const ReplicaId target = live[index];
  const sim::Bytes payload =
      kHeaderBytes + req.key.size() +
      (req.op == OpKind::kPut ? params_.value_bytes : 0);
  const sim::SimTime delay = path_delay(gateway_, replicas_[target]->host(),
                                        payload, mix(req.id * 2 + 1));
  if (delay < 0) {
    attempt_failed(std::move(req));
    return;
  }
  sim_->schedule_in(delay, [this, req = std::move(req), target]() mutable {
    deliver(std::move(req), target);
  });
}

void FrontDoor::deliver(Request req, ReplicaId target) {
  ReplicaServer& replica = *replicas_[target];
  // The host may have died while the request was on the wire.
  if (!topo_->node_up(replica.host()) || !replica.serving()) {
    attempt_failed(std::move(req));
    return;
  }
  if (!replica.try_enqueue(req)) {
    // Admission control: shed, typed, terminal — never retried.
    slo_.on_rejected(req, Overloaded::kQueueFull, sim_->now());
  }
}

void FrontDoor::replica_completed(const Request& req, ReplicaOutcome outcome,
                                  ReplicaId target) {
  if (outcome == ReplicaOutcome::kKilled) {
    attempt_failed(req);
    return;
  }
  if (req.op == OpKind::kPut) {
    // Asynchronous replication: surviving sibling owners apply the write at
    // service-finish time; owners currently down simply miss it.
    const std::size_t r = std::min(params_.replication, replicas_.size());
    for (const ReplicaId id : ring_.replicas(req.key, r).replicas) {
      if (id == target) continue;
      if (ring_.up(id) && topo_->node_up(replicas_[id]->host())) {
        replicas_[id]->store().put(req.key, req.value);
      }
    }
  }
  const sim::Bytes payload =
      kHeaderBytes + (req.op == OpKind::kGet ? params_.value_bytes : 0);
  sim::SimTime delay = path_delay(replicas_[target]->host(), gateway_,
                                  payload, mix(req.id * 2));
  // Responses are not dropped: if the return path is momentarily
  // partitioned, charge zero fabric delay rather than losing the reply.
  if (delay < 0) delay = 0;
  sim_->schedule_in(delay, [this, req] {
    slo_.on_completed(req, sim_->now());
  });
}

void FrontDoor::attempt_failed(Request req) {
  ++req.attempts;
  if (req.attempts >= params_.max_attempts) {
    slo_.on_failed(req, sim_->now());
    return;
  }
  slo_.on_retry(req);
  // Capped exponential backoff with deterministic jitter.
  sim::SimTime backoff = params_.retry_backoff;
  for (int i = 1; i < req.attempts && backoff < params_.retry_backoff_cap;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, params_.retry_backoff_cap);
  backoff = static_cast<sim::SimTime>(static_cast<double>(backoff) *
                                      rng_.uniform(1.0, 1.25));
  sim_->schedule_in(std::max<sim::SimTime>(backoff, 1),
                    [this, req = std::move(req)]() mutable {
                      attempt(std::move(req));
                    });
}

sim::SimTime FrontDoor::path_delay(net::NodeId from, net::NodeId to,
                                   sim::Bytes payload,
                                   std::uint64_t flow_hash) const {
  if (from == to) return 0;
  try {
    sim::SimTime total = 0;
    for (const net::LinkId link_id : router_->path(from, to, flow_hash)) {
      const net::Link& link = topo_->link(link_id);
      total += link.latency + sim::serialization_time(payload, link.rate);
    }
    return total;
  } catch (const net::NoRouteError&) {
    return -1;
  }
}

void FrontDoor::handle_fault(const faults::FaultEvent& event) {
  if (event.target != faults::FaultTarget::kNode) return;
  const auto it = host_to_replica_.find(event.id);
  if (it == host_to_replica_.end()) return;
  const ReplicaId id = it->second;
  ring_.set_up(id, event.up);
  if (event.up) {
    replicas_[id]->set_up();
  } else {
    // Kills queued and in-service work; each victim's completion callback
    // fires with kKilled and fails over above.
    replicas_[id]->set_down();
  }
}

std::vector<net::NodeId> FrontDoor::replica_hosts() const {
  std::vector<net::NodeId> hosts;
  hosts.reserve(replicas_.size());
  for (const auto& replica : replicas_) hosts.push_back(replica->host());
  return hosts;
}

double estimated_capacity_qps(const FrontDoorParams& params,
                              std::size_t replica_count) {
  const double per_request_s = sim::to_seconds(
      ReplicaServer::amortized_service_time(params.replica));
  return per_request_s <= 0.0
             ? 0.0
             : static_cast<double>(replica_count) / per_request_s;
}

faults::FaultPlan make_host_churn_plan(const std::vector<net::NodeId>& hosts,
                                       double mtbf_s, double mttr_s,
                                       sim::SimTime horizon,
                                       std::uint64_t seed) {
  if (mtbf_s <= 0.0 || mttr_s <= 0.0)
    throw std::invalid_argument{"make_host_churn_plan: rates must be > 0"};
  faults::FaultPlan plan;
  sim::Rng rng{seed};
  for (const net::NodeId host : hosts) {
    sim::SimTime t = sim::from_seconds(rng.exponential(mtbf_s));
    while (t < horizon) {
      const sim::SimTime down = std::max<sim::SimTime>(
          sim::from_seconds(rng.exponential(mttr_s)), 1);
      // Repair lands inside the horizon, so nothing stays dead forever.
      const sim::SimTime outage = std::min(down, horizon - 1 - t);
      plan.add_node_outage(host, t, std::max<sim::SimTime>(outage, 1));
      t += down + sim::from_seconds(rng.exponential(mtbf_s));
    }
  }
  return plan;
}

}  // namespace rb::serve

#include "serve/frontdoor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "obs/context.hpp"

namespace rb::serve {

namespace {

constexpr sim::Bytes kHeaderBytes = 64;  // request/response framing

std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FrontDoor::FrontDoor(sim::Simulator& sim, const net::Topology& topo,
                     const net::Router& router, const FrontDoorParams& params)
    : sim_{&sim},
      topo_{&topo},
      router_{&router},
      params_{params},
      ring_{params.vnodes_per_replica},
      rng_{params.seed},
      key_dist_{std::max<std::size_t>(params.key_universe, 1), params.zipf_s},
      budget_{params.resilience.budget},
      hedge_delay_{params.resilience.hedge} {
  if (params_.key_universe == 0)
    throw std::invalid_argument{"FrontDoor: empty key universe"};
  if (params_.replication == 0)
    throw std::invalid_argument{"FrontDoor: replication must be >= 1"};
  if (params_.offered_qps <= 0.0)
    throw std::invalid_argument{"FrontDoor: offered_qps must be > 0"};
  if (params_.read_fraction < 0.0 || params_.read_fraction > 1.0)
    throw std::invalid_argument{"FrontDoor: read_fraction out of [0, 1]"};
  if (params_.diurnal_amplitude < 0.0 || params_.diurnal_amplitude >= 1.0)
    throw std::invalid_argument{
        "FrontDoor: diurnal_amplitude out of [0, 1)"};
  if (params_.max_attempts < 1)
    throw std::invalid_argument{"FrontDoor: max_attempts must be >= 1"};
  if (params_.resilience.request_timeout < 0 ||
      params_.resilience.attempt_timeout < 0)
    throw std::invalid_argument{"FrontDoor: negative timeout"};

  const auto hosts = topo_->nodes_of_kind(net::NodeKind::kHost);
  if (hosts.size() < 2)
    throw std::invalid_argument{
        "FrontDoor: topology needs >= 2 hosts (gateway + replicas)"};
  const std::size_t count =
      params_.replicas == 0 ? hosts.size() - 1 : params_.replicas;
  if (count + 1 > hosts.size())
    throw std::invalid_argument{
        "FrontDoor: fewer hosts than requested replicas"};
  gateway_ = hosts.front();
  replicas_.reserve(count);
  breakers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto id = static_cast<ReplicaId>(i);
    const net::NodeId host = hosts[i + 1];
    replicas_.push_back(std::make_unique<ReplicaServer>(
        *sim_, id, host, params_.replica, rng_()));
    replicas_.back()->on_complete(
        [this, id](const Request& req, ReplicaOutcome outcome) {
          replica_completed(req, outcome, id);
        });
    breakers_.emplace_back(params_.resilience.breaker);
    host_to_replica_.emplace(host, id);
    ring_.add_node(id);
  }
}

std::string FrontDoor::key_string(std::size_t index) const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "k%08zu", index);
  return buf;
}

void FrontDoor::preload() {
  const std::string value(params_.value_bytes, 'v');
  const std::size_t r = std::min(params_.replication, replicas_.size());
  for (std::size_t k = 0; k < params_.key_universe; ++k) {
    const std::string key = key_string(k);
    for (const ReplicaId id : ring_.replicas(key, r).replicas) {
      replicas_[id]->store().put(key, value);
    }
  }
}

void FrontDoor::start() {
  if (started_) return;
  started_ = true;
  schedule_next_arrival();
}

void FrontDoor::schedule_next_arrival() {
  // Poisson arrivals with a (slowly varying) diurnal rate: the next gap is
  // exponential at the instantaneous rate.
  double rate = params_.offered_qps;
  if (params_.diurnal_amplitude > 0.0) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(sim_->now()) /
                         static_cast<double>(params_.diurnal_period);
    rate *= 1.0 + params_.diurnal_amplitude * std::sin(phase);
  }
  const sim::SimTime gap = std::max<sim::SimTime>(
      sim::from_seconds(rng_.exponential(1.0 / rate)), 1);
  if (sim_->now() + gap >= params_.horizon) return;  // population stops
  sim_->schedule_in(gap, [this] {
    issue();
    schedule_next_arrival();
  });
}

Request FrontDoor::make_request() {
  Request req;
  req.id = next_request_id_++;
  req.issued = sim_->now();
  if (params_.resilience.request_timeout > 0) {
    req.deadline = req.issued + params_.resilience.request_timeout;
  }
  req.key = key_string(key_dist_(rng_));
  if (!rng_.chance(params_.read_fraction)) {
    req.op = OpKind::kPut;
    req.value.assign(params_.value_bytes, 'w');
  }
  auto& tracer = obs::RequestTracer::global();
  if (tracer.enabled()) {
    req.trace = tracer.start_trace(
        req.op == OpKind::kGet ? "get" : "put", req.issued);
  }
  return req;
}

void FrontDoor::issue() {
  Request req = make_request();
  slo_.on_issued(req);
  budget_.on_issued();
  const std::uint64_t id = req.id;
  Pending& p = pending_[id];
  p.req = std::move(req);
  start_wave(id);
}

ReplicaId FrontDoor::pick_target(const Pending& p, bool hedge) {
  const std::size_t r = std::min(params_.replication, replicas_.size());
  const Placement placement = ring_.replicas(p.req.key, r);
  // Candidates: owners that are ring-live, whose host is up, and that are
  // serving. (Ownership never changes with up/down — only contactability.)
  std::vector<ReplicaId> live;
  live.reserve(placement.replicas.size());
  for (const ReplicaId id : placement.replicas) {
    if (ring_.up(id) && topo_->node_up(replicas_[id]->host()) &&
        replicas_[id]->serving()) {
      live.push_back(id);
    }
  }
  if (live.empty()) return kInvalidReplica;
  // Puts start at the first live owner; gets spread across live owners by a
  // deterministic per-request rotation (retries move to the next one).
  std::size_t first = 0;
  if (p.req.op == OpKind::kGet) {
    first = static_cast<std::size_t>(
        (mix(p.req.id) + static_cast<std::uint64_t>(p.req.attempts)) %
        live.size());
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    const ReplicaId candidate = live[(first + i) % live.size()];
    // A hedge must race a *different* replica than the in-flight attempts.
    if (hedge) {
      bool in_flight = false;
      for (const Attempt& a : p.attempts) in_flight |= a.target == candidate;
      if (in_flight) continue;
    }
    // Breaker gate last: allow() meters half-open probes, so it must only
    // be consulted for a candidate that would actually be sent to. (Denials
    // are counted by the breaker itself.)
    if (!breakers_[candidate].allow(sim_->now())) continue;
    return candidate;
  }
  return kInvalidReplica;
}

void FrontDoor::start_wave(std::uint64_t id) {
  Pending& p = pending_.at(id);
  p.attempts.clear();
  p.hedged = false;
  p.rejected = false;
  p.expired = false;
  const ReplicaId target = pick_target(p, /*hedge=*/false);
  if (target == kInvalidReplica) {
    // Nothing sendable (all owners down or breaker-denied): burn an attempt
    // and go through the retry gates — maybe someone recovers by then.
    retry_or_fail(id);
    return;
  }
  dispatch(id, target, /*hedge=*/false);
  // dispatch() may have resolved the request (unreachable target, retry
  // gates all said no) — re-look-up before arming the wave's timers.
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.attempts.empty()) return;
  const int wave = it->second.req.attempts;
  if (params_.resilience.attempt_timeout > 0) {
    sim_->schedule_in(params_.resilience.attempt_timeout,
                      [this, id, wave] { on_attempt_timeout(id, wave); });
  }
  const std::size_t r = std::min(params_.replication, replicas_.size());
  if (params_.resilience.hedge.enabled &&
      it->second.req.op == OpKind::kGet && r > 1) {
    sim_->schedule_in(std::max<sim::SimTime>(hedge_delay_.delay(), 1),
                      [this, id, wave] { maybe_hedge(id, wave); });
  }
}

void FrontDoor::dispatch(std::uint64_t id, ReplicaId target, bool hedge) {
  Pending& p = pending_.at(id);
  const sim::Bytes payload =
      kHeaderBytes + p.req.key.size() +
      (p.req.op == OpKind::kPut ? params_.value_bytes : 0);
  const sim::SimTime delay =
      path_delay(gateway_, replicas_[target]->host(), payload,
                 mix(p.req.id * 2 + 1 + (hedge ? 0x9e37 : 0)));
  if (delay < 0) {
    // Unreachable counts as a transport failure for the target's breaker.
    breakers_[target].on_failure(sim_->now());
    if (p.attempts.empty()) {
      wave_exhausted(id);
    }
    return;
  }
  p.attempts.push_back(Attempt{target, sim_->now(), hedge});
  Request copy = p.req;
  // Causal propagation: open an attempt span under the request's root and
  // hand the dispatched copy the attempt's coordinates, so the replica's
  // queue/service spans (and the response path) parent to THIS attempt.
  auto& tracer = obs::RequestTracer::global();
  if (tracer.enabled() && p.req.trace.active()) {
    const std::uint64_t attempt_span = tracer.begin_span(
        p.req.trace, obs::Segment::kAttempt, hedge ? "hedge" : "attempt",
        sim_->now(), static_cast<std::int64_t>(target));
    copy.trace.span_id = attempt_span;
    tracer.add_span(copy.trace, obs::Segment::kNetwork, "net.out",
                    sim_->now(), sim_->now() + delay,
                    static_cast<std::int64_t>(target));
  }
  sim_->schedule_in(delay, [this, copy = std::move(copy), target]() mutable {
    deliver(std::move(copy), target);
  });
}

void FrontDoor::deliver(Request req, ReplicaId target) {
  const auto it = pending_.find(req.id);
  if (it == pending_.end() || it->second.req.attempts != req.attempts) {
    // The race is over (hedge loser) or the wave was abandoned while this
    // attempt was on the wire: drop it before it costs the replica anything.
    return;
  }
  Pending& p = it->second;
  ReplicaServer& replica = *replicas_[target];
  // The host may have died while the request was on the wire.
  if (!topo_->node_up(replica.host()) || !replica.serving()) {
    attempt_transport_failed(req.id, target);
    return;
  }
  if (!replica.try_enqueue(req)) {
    // Admission control: shed, typed, terminal — never retried. With a
    // hedge twin still in flight the twin may yet complete the request; the
    // rejection becomes terminal only once the wave has no survivors.
    p.rejected = true;
    remove_attempt(p, target);
    if (p.attempts.empty()) wave_exhausted(req.id);
  }
}

void FrontDoor::replica_completed(const Request& req, ReplicaOutcome outcome,
                                  ReplicaId target) {
  const auto it = pending_.find(req.id);
  const bool stale = it == pending_.end() ||
                     it->second.req.attempts != req.attempts;
  switch (outcome) {
    case ReplicaOutcome::kKilled:
      // Transport death is breaker evidence even for abandoned attempts.
      breakers_[target].on_failure(sim_->now());
      if (!stale) attempt_transport_failed(req.id, target);
      return;
    case ReplicaOutcome::kExpired: {
      if (stale) return;  // zombie expired in a queue: already abandoned
      Pending& p = it->second;
      p.expired = true;
      ++rstats_.deadline_queue_drops;
      remove_attempt(p, target);
      if (p.attempts.empty()) wave_exhausted(req.id);
      return;
    }
    case ReplicaOutcome::kServed:
      break;
  }
  if (stale) {
    // A zombie (timed-out or hedge-lost attempt) got served anyway: the
    // capacity is spent, the response will be discarded. This is the wasted
    // work retry budgets and deadlines exist to bound.
    ++rstats_.wasted_responses;
    return;
  }
  Pending& p = it->second;
  if (req.op == OpKind::kPut) {
    // Asynchronous replication: surviving sibling owners apply the write at
    // service-finish time; owners currently down simply miss it.
    const std::size_t r = std::min(params_.replication, replicas_.size());
    for (const ReplicaId sibling : ring_.replicas(req.key, r).replicas) {
      if (sibling == target) continue;
      if (ring_.up(sibling) && topo_->node_up(replicas_[sibling]->host())) {
        replicas_[sibling]->store().put(req.key, req.value);
      }
    }
  }
  sim::SimTime sent = 0;
  for (const Attempt& a : p.attempts) {
    if (a.target == target) sent = a.sent;
  }
  const sim::Bytes payload =
      kHeaderBytes + (req.op == OpKind::kGet ? params_.value_bytes : 0);
  sim::SimTime delay = path_delay(replicas_[target]->host(), gateway_,
                                  payload, mix(req.id * 2));
  // Responses are not dropped: if the return path is momentarily
  // partitioned, charge zero fabric delay rather than losing the reply.
  if (delay < 0) delay = 0;
  auto& tracer = obs::RequestTracer::global();
  if (tracer.enabled() && req.trace.active()) {
    tracer.add_span(req.trace, obs::Segment::kNetwork, "net.response",
                    sim_->now(), sim_->now() + delay,
                    static_cast<std::int64_t>(target));
  }
  sim_->schedule_in(delay, [this, req, target, sent] {
    response_arrived(req, target, sent);
  });
}

void FrontDoor::response_arrived(const Request& req, ReplicaId target,
                                 sim::SimTime sent) {
  // Attempt RTT as the client saw it: gateway dispatch to gateway arrival.
  // Feeds the hedge-delay quantile and the target's breaker even when the
  // race is already over — it is genuine evidence about replica speed.
  const double rtt_s = sim::to_seconds(sim_->now() - sent);
  hedge_delay_.record(rtt_s);
  breakers_[target].on_success(rtt_s, sim_->now());
  const auto it = pending_.find(req.id);
  if (it == pending_.end() || it->second.req.attempts != req.attempts) {
    ++rstats_.wasted_responses;  // hedge loser or abandoned attempt
    return;
  }
  // First response wins the wave and resolves the request.
  for (const Attempt& a : it->second.attempts) {
    if (a.target == target && a.hedge) {
      ++rstats_.hedges_won;
      resilience_metrics::hedge_won();
    }
  }
  auto& tracer = obs::RequestTracer::global();
  if (tracer.enabled() && req.trace.active()) {
    // req.trace.span_id is the winning attempt's span (stamped at dispatch).
    tracer.end_span(req.trace.trace_id, req.trace.span_id, sim_->now());
    tracer.mark_won(req.trace.trace_id, req.trace.span_id);
  }
  slo_.on_completed(req, sim_->now());
  pending_.erase(it);
}

bool FrontDoor::remove_attempt(Pending& p, ReplicaId target) {
  for (auto a = p.attempts.begin(); a != p.attempts.end(); ++a) {
    if (a->target == target) {
      p.attempts.erase(a);
      return true;
    }
  }
  return false;
}

void FrontDoor::attempt_transport_failed(std::uint64_t id, ReplicaId target) {
  Pending& p = pending_.at(id);
  remove_attempt(p, target);
  if (p.attempts.empty()) wave_exhausted(id);
}

void FrontDoor::on_attempt_timeout(std::uint64_t id, int wave) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.req.attempts != wave) return;
  Pending& p = it->second;
  if (p.attempts.empty()) return;  // wave already exhausted; retry scheduled
  // Abandon every in-flight attempt of this wave: their responses (if any)
  // will arrive with a stale attempts value and be discarded. The attempts
  // themselves may still be queued at replicas — zombies whose service cost
  // is the hidden price of timeouts. Timeouts do NOT feed the breakers: a
  // timed-out attempt on an overloaded-but-healthy replica says "the fleet
  // is slow", not "this replica is broken" (kills and unreachability do).
  ++rstats_.attempt_timeouts;
  p.attempts.clear();
  retry_or_fail(id);
}

void FrontDoor::maybe_hedge(std::uint64_t id, int wave) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.req.attempts != wave) return;
  Pending& p = it->second;
  if (p.hedged || p.attempts.empty()) return;
  const ReplicaId target = pick_target(p, /*hedge=*/true);
  if (target == kInvalidReplica) return;  // nobody distinct to race
  p.hedged = true;
  ++rstats_.hedges_issued;
  resilience_metrics::hedge_issued();
  auto& tracer = obs::RequestTracer::global();
  if (tracer.enabled() && p.req.trace.active() && !p.attempts.empty()) {
    // The wait from the wave's first dispatch until now is what hedging
    // cost this request IF the hedge ends up winning; the critical-path
    // analyzer charges it only in that case.
    tracer.add_span(p.req.trace, obs::Segment::kHedgeWait, "hedge_wait",
                    p.attempts.front().sent, sim_->now(),
                    static_cast<std::int64_t>(target));
  }
  dispatch(id, target, /*hedge=*/true);
}

void FrontDoor::wave_exhausted(std::uint64_t id) {
  Pending& p = pending_.at(id);
  if (p.rejected) {
    // Shed load stays shed: a wave that saw admission-control rejection
    // terminates as rejected even if a hedge twin died elsewhere.
    slo_.on_rejected(p.req, Overloaded::kQueueFull, sim_->now());
    pending_.erase(id);
    return;
  }
  if (p.expired) {
    // The deadline passed while queued; retrying cannot beat it.
    ++rstats_.deadline_drops;
    resilience_metrics::deadline_drop();
    resolve_failed(id);
    return;
  }
  retry_or_fail(id);
}

sim::SimTime FrontDoor::backoff_for(int attempts) {
  // Capped exponential base with seeded equal-jitter: uniform in
  // [base/2, base], so concurrent failovers decorrelate instead of
  // thundering back in lockstep.
  sim::SimTime base = params_.retry_backoff;
  for (int i = 1; i < attempts && base < params_.retry_backoff_cap; ++i) {
    base *= 2;
  }
  base = std::min(base, params_.retry_backoff_cap);
  const auto jittered = static_cast<sim::SimTime>(
      static_cast<double>(base) * rng_.uniform(0.5, 1.0));
  return std::max<sim::SimTime>(jittered, 1);
}

void FrontDoor::retry_or_fail(std::uint64_t id) {
  Pending& p = pending_.at(id);
  ++p.req.attempts;
  if (p.req.attempts >= params_.max_attempts) {
    resolve_failed(id);
    return;
  }
  const sim::SimTime backoff = backoff_for(p.req.attempts);
  if (p.req.deadline > 0 && sim_->now() + backoff >= p.req.deadline) {
    // Deadline propagation, caller side: never launch a retry that cannot
    // land in time.
    ++rstats_.deadline_drops;
    resilience_metrics::deadline_drop();
    resolve_failed(id);
    return;
  }
  if (!budget_.try_spend()) {
    // Retry storm guard: out of budget, fail fast instead of amplifying.
    ++rstats_.retries_budgeted;
    resilience_metrics::retries_budgeted();
    resolve_failed(id);
    return;
  }
  slo_.on_retry(p.req);
  auto& tracer = obs::RequestTracer::global();
  if (tracer.enabled() && p.req.trace.active()) {
    tracer.add_span(p.req.trace, obs::Segment::kBackoff, "backoff",
                    sim_->now(), sim_->now() + backoff);
  }
  sim_->schedule_in(backoff, [this, id] { start_wave(id); });
}

void FrontDoor::resolve_failed(std::uint64_t id) {
  Pending& p = pending_.at(id);
  slo_.on_failed(p.req, sim_->now());
  pending_.erase(id);
}

sim::SimTime FrontDoor::path_delay(net::NodeId from, net::NodeId to,
                                   sim::Bytes payload,
                                   std::uint64_t flow_hash) const {
  if (from == to) return 0;
  try {
    sim::SimTime total = 0;
    for (const net::LinkId link_id : router_->path(from, to, flow_hash)) {
      const net::Link& link = topo_->link(link_id);
      const sim::SimTime hop =
          link.latency + sim::serialization_time(payload, link.rate);
      // A gray link (or endpoint) stretches both propagation and
      // serialization — rate / slowdown is the same as time * slowdown.
      const double slow = topo_->effective_slowdown(link_id);
      total += slow > 1.0 ? static_cast<sim::SimTime>(
                                static_cast<double>(hop) * slow)
                          : hop;
    }
    return total;
  } catch (const net::NoRouteError&) {
    return -1;
  }
}

void FrontDoor::handle_fault(const faults::FaultEvent& event) {
  if (event.target != faults::FaultTarget::kNode) return;
  const auto it = host_to_replica_.find(event.id);
  if (it == host_to_replica_.end()) return;
  const ReplicaId id = it->second;
  if (event.mode == faults::FaultMode::kDegrade) {
    // Gray failure: the replica stays in the ring and keeps serving —
    // slowly. Only latency-aware machinery (breakers, hedging, deadlines)
    // can route around it; membership never notices.
    replicas_[id]->set_slowdown(event.up ? 1.0 : event.factor);
    return;
  }
  ring_.set_up(id, event.up);
  if (event.up) {
    replicas_[id]->set_up();
  } else {
    // Kills queued and in-service work; each victim's completion callback
    // fires with kKilled and fails over above.
    replicas_[id]->set_down();
  }
}

std::vector<net::NodeId> FrontDoor::replica_hosts() const {
  std::vector<net::NodeId> hosts;
  hosts.reserve(replicas_.size());
  for (const auto& replica : replicas_) hosts.push_back(replica->host());
  return hosts;
}

ResilienceStats FrontDoor::resilience_stats() const {
  ResilienceStats out = rstats_;
  for (const CircuitBreaker& b : breakers_) {
    out.breaker_opens += b.opens();
    out.breaker_denials += b.denials();
  }
  return out;
}

double estimated_capacity_qps(const FrontDoorParams& params,
                              std::size_t replica_count) {
  const double per_request_s = sim::to_seconds(
      ReplicaServer::amortized_service_time(params.replica));
  return per_request_s <= 0.0
             ? 0.0
             : static_cast<double>(replica_count) / per_request_s;
}

faults::FaultPlan make_host_churn_plan(const std::vector<net::NodeId>& hosts,
                                       double mtbf_s, double mttr_s,
                                       sim::SimTime horizon,
                                       std::uint64_t seed) {
  if (mtbf_s <= 0.0 || mttr_s <= 0.0)
    throw std::invalid_argument{"make_host_churn_plan: rates must be > 0"};
  faults::FaultPlan plan;
  sim::Rng rng{seed};
  for (const net::NodeId host : hosts) {
    sim::SimTime t = sim::from_seconds(rng.exponential(mtbf_s));
    while (t < horizon) {
      const sim::SimTime down = std::max<sim::SimTime>(
          sim::from_seconds(rng.exponential(mttr_s)), 1);
      // Repair lands inside the horizon, so nothing stays dead forever.
      const sim::SimTime outage = std::min(down, horizon - 1 - t);
      plan.add_node_outage(host, t, std::max<sim::SimTime>(outage, 1));
      t += down + sim::from_seconds(rng.exponential(mtbf_s));
    }
  }
  return plan;
}

}  // namespace rb::serve

#pragma once
// Resilience control plane of the serving layer: the mechanisms that keep a
// fleet's goodput and tail bounded when things break *partially*.
//
// Admission control (replica.hpp) protects one server from overload; this
// header holds the cross-replica policies the front door composes on top:
//
//  * Deadline propagation — every Request can carry an absolute deadline.
//    Replicas drop already-expired queued work before spending service time
//    on it, and the front door never schedules a retry that would land past
//    the deadline. Without this, a congested cluster burns capacity
//    computing answers nobody is waiting for.
//
//  * RetryBudget — a token bucket capping the fleet-wide retry:first-attempt
//    ratio. Every issued request earns `ratio` tokens (clamped to `burst`);
//    every retry spends one. When a pod dies and thousands of requests fail
//    at once, an unbudgeted client population multiplies offered load by
//    max_attempts and keeps the survivors saturated long after the repair —
//    the metastable retry storm. A budget makes mass failure degrade
//    gracefully: at most `ratio` extra load, the rest fails fast.
//
//  * CircuitBreaker — per-replica closed/open/half-open state driven by
//    consecutive transport failures *and* a latency EWMA, so it also trips
//    on gray failures (the replica answers — slowly — and a failure counter
//    alone would never open). Open breakers reject instantly; after a
//    cooldown the breaker admits a handful of half-open probes and closes
//    again only when they come back fast.
//
//  * Hedging — a straggling attempt is duplicated to the next live owner
//    once it outlives the tracked p95 attempt latency; first response wins,
//    the loser is cancelled (dropped at the replica if still queued, its
//    response ignored otherwise). By construction only ~(100-q)% of
//    attempts hedge, so the extra issued load is bounded (~5% at p95).
//
// All knobs default off; a FrontDoor with a default ResilienceParams
// behaves like the pre-resilience serving plane (modulo jittered backoff).

#include <cstdint>
#include <vector>

#include "sim/units.hpp"

namespace rb::serve {

/// --- Retry budget -------------------------------------------------------

struct RetryBudgetParams {
  bool enabled = false;
  /// Retry tokens earned per issued (first-attempt) request; the steady
  /// state retry:first-attempt ratio the fleet tolerates.
  double ratio = 0.1;
  /// Token-bucket capacity (also the initial balance): short failure blips
  /// retry freely, sustained mass failure hits the ratio.
  double burst = 100.0;
};

class RetryBudget {
 public:
  explicit RetryBudget(const RetryBudgetParams& params);

  /// A first attempt was issued: earn `ratio` tokens, clamped to `burst`.
  void on_issued() noexcept;

  /// Spend one token for a retry. Returns false (and spends nothing) when
  /// the bucket is empty; a disabled budget always grants.
  bool try_spend() noexcept;

  double tokens() const noexcept { return tokens_; }
  std::uint64_t denied() const noexcept { return denied_; }

 private:
  RetryBudgetParams params_;
  double tokens_ = 0.0;
  std::uint64_t denied_ = 0;
};

/// --- Circuit breaker ----------------------------------------------------

struct BreakerParams {
  bool enabled = false;
  /// Consecutive transport failures (kill / unreachable) that open the
  /// breaker from closed.
  int failure_threshold = 5;
  /// How long an open breaker rejects before letting probes through.
  sim::SimTime open_cooldown = 50 * sim::kMillisecond;
  /// Attempts admitted in half-open; each must succeed (and beat the
  /// latency threshold, when configured) for the breaker to close.
  int half_open_probes = 3;
  /// EWMA weight of each new latency sample.
  double latency_alpha = 0.1;
  /// Open when the success-latency EWMA exceeds this (seconds); 0 disables
  /// latency tripping. This is the gray-failure detector: a 10x-degraded
  /// replica fails no requests, it just answers late.
  double latency_threshold_s = 0.0;
  /// Samples required before the EWMA may trip (warm-up guard).
  int min_latency_samples = 16;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state) noexcept;

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerParams& params);

  /// May this replica be sent an attempt at `now`? Open breakers say no
  /// until the cooldown elapses, then transition to half-open and admit
  /// `half_open_probes` attempts. (Mutates state; call once per candidate
  /// consideration.) A disabled breaker always says yes.
  bool allow(sim::SimTime now);

  /// An attempt on this replica completed in `latency_s` seconds.
  void on_success(double latency_s, sim::SimTime now);
  /// An attempt on this replica died in transport (killed / unreachable).
  void on_failure(sim::SimTime now);

  BreakerState state() const noexcept { return state_; }
  double latency_ewma_s() const noexcept { return ewma_s_; }
  /// Closed -> open (or half-open -> open) transitions so far.
  std::uint64_t opens() const noexcept { return opens_; }
  std::uint64_t denials() const noexcept { return denials_; }

 private:
  void trip(sim::SimTime now);

  BreakerParams params_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probes_left_ = 0;
  int probe_successes_ = 0;
  double ewma_s_ = 0.0;
  int ewma_samples_ = 0;
  sim::SimTime open_until_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t denials_ = 0;
};

/// --- Hedging ------------------------------------------------------------

struct HedgeParams {
  bool enabled = false;
  /// Hedge an attempt once it outlives this percentile of recent attempt
  /// latencies. 95 bounds hedge-issued load at ~5% of first attempts.
  double quantile = 95.0;
  /// Delay used until `min_samples` latencies are recorded (and a floor
  /// below which the tracked quantile never pushes the delay).
  sim::SimTime min_delay = 1 * sim::kMillisecond;
  /// Sliding window of attempt latencies the quantile is computed over.
  std::size_t window = 512;
  std::size_t min_samples = 64;
};

/// Sliding-window quantile estimator for the hedge delay. Keeps the last
/// `window` attempt latencies in a ring buffer; the quantile is recomputed
/// lazily. Deterministic: no clocks, no sampling.
class HedgeDelayTracker {
 public:
  explicit HedgeDelayTracker(const HedgeParams& params);

  /// Record one completed attempt's latency (seconds).
  void record(double latency_s);

  /// Current hedge delay: max(min_delay, quantile of the window).
  sim::SimTime delay() const;

  std::size_t samples() const noexcept { return count_; }

 private:
  HedgeParams params_;
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  mutable sim::SimTime cached_delay_ = 0;
  mutable std::size_t cached_at_ = 0;  // count_ value the cache was built at
};

/// --- Bundle + accounting ------------------------------------------------

struct ResilienceParams {
  /// Relative deadline stamped on every request at issue; 0 = no deadline.
  /// Absolute deadline = issue time + request_timeout.
  sim::SimTime request_timeout = 0;
  /// Per-attempt timeout: an attempt with no response after this long is
  /// abandoned and the request re-enters the retry path (the zombie attempt
  /// may still be served — that wasted work is what retry budgets bound).
  /// 0 = wait forever (pre-resilience behavior).
  sim::SimTime attempt_timeout = 0;
  RetryBudgetParams budget;
  BreakerParams breaker;
  HedgeParams hedge;
};

/// Front-door-side counters for everything above, mirrored into rb_obs as
/// serve.retries_budgeted / serve.breaker_open / serve.hedges_issued /
/// serve.hedges_won / serve.deadline_drops when telemetry is enabled.
struct ResilienceStats {
  /// Retries denied by the budget (failed fast instead of retrying).
  std::uint64_t retries_budgeted = 0;
  /// Requests dropped for deadline reasons: expired in a replica queue, or
  /// a retry abandoned because it could not land before the deadline.
  std::uint64_t deadline_drops = 0;
  /// Subset of deadline_drops that expired while queued at a replica.
  std::uint64_t deadline_queue_drops = 0;
  /// Attempts abandoned by the per-attempt timeout.
  std::uint64_t attempt_timeouts = 0;
  /// Hedge attempts issued, and hedges whose response won the race.
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  /// Breaker trips (closed/half-open -> open) summed over replicas, and
  /// candidate replicas skipped because their breaker said no.
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_denials = 0;
  /// Served responses that arrived for an already-resolved request (hedge
  /// losers, timed-out zombies): pure wasted service capacity.
  std::uint64_t wasted_responses = 0;
};

/// Mirror one increment of each named stat into the global obs registry
/// (no-op when obs is disabled). Implemented with cached counter handles,
/// matching the other serve metrics.
namespace resilience_metrics {
void retries_budgeted();
void deadline_drop();
void breaker_open();
void hedge_issued();
void hedge_won();
}  // namespace resilience_metrics

}  // namespace rb::serve

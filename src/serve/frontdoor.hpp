#pragma once
// FrontDoor: the serving plane's request router and client population.
//
// An open-loop client population (Poisson arrivals, optionally modulated by
// a diurnal curve; Zipf key popularity over a fixed key universe) issues
// get/put requests from a gateway host against LsmStore-backed replicas
// placed on hosts of a net::Topology. Each request:
//
//   1. is placed by the consistent-hash ring (key -> shard -> R owners);
//   2. travels the fabric (per-link propagation latency + serialization of
//      the payload along the ECMP path the router picks, stretched by any
//      gray-failure slowdown on the links or their endpoints);
//   3. is admitted into the replica's bounded queue — or shed with a typed
//      Overloaded rejection (terminal; shed load is never retried);
//   4. on replica death mid-flight (faults::FaultInjector flipping the host
//      down), fails over: the ring temporarily ejects the dead node and the
//      request retries on a surviving owner with capped exponential
//      backoff + seeded equal-jitter, up to max_attempts, then fails.
//
// On top of plain failover sits the resilience control plane
// (serve/resilience.hpp), every piece off by default:
//
//   * request_timeout stamps an absolute deadline on each request; replicas
//     drop expired queued work, and retries that cannot land before the
//     deadline are abandoned (counted as deadline drops, terminal failed).
//   * attempt_timeout abandons an unanswered attempt and re-enters the
//     retry path; the abandoned attempt may still be served — its response
//     is discarded at the gateway (wasted work, the retry-storm fuel).
//   * The retry budget gates every retry; a denied retry fails fast.
//   * Per-replica circuit breakers steer attempts away from replicas that
//     keep killing requests or (latency EWMA) answer suspiciously slowly.
//   * Hedging duplicates a straggling get to a different live owner after
//     the tracked p95 attempt latency; first response wins, the loser is
//     dropped on delivery if the race is already over, or its response is
//     discarded.
//
// Puts are serviced by one live owner and replicated to the remaining live
// owners asynchronously (applied to their stores at service-finish time; a
// node that was down during the write simply misses it — there is no
// anti-entropy repair, so a later get served by a stale replica returns
// not-found but still *completes*). Puts are never hedged.
//
// The SLO accountant records every outcome; its ledger invariant
// (completed + rejected + failed == issued) holds for every configuration —
// chaos, hedging, timeouts and gray failures included — and is
// test-asserted.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "faults/plan.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "serve/replica.hpp"
#include "serve/resilience.hpp"
#include "serve/ring.hpp"
#include "serve/slo.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace rb::serve {

struct FrontDoorParams {
  /// Replica servers to place on hosts (gateway excluded); 0 = one replica
  /// on every remaining host.
  std::size_t replicas = 0;
  /// Copies per key (capped at the replica count).
  std::size_t replication = 3;
  std::size_t vnodes_per_replica = 64;

  /// --- Client population (open loop) ---
  std::size_t key_universe = 10'000;
  double zipf_s = 0.99;           // key popularity skew
  double read_fraction = 0.9;     // gets vs puts
  sim::Bytes value_bytes = 256;   // payload of puts / responses
  double offered_qps = 10'000.0;  // mean arrival rate
  /// Arrival rate swings by +-amplitude over one diurnal period (0 = flat).
  double diurnal_amplitude = 0.0;
  sim::SimTime diurnal_period = 10 * sim::kSecond;  // compressed "day"
  sim::SimTime horizon = sim::kSecond;              // arrivals stop here

  /// --- Failover ---
  int max_attempts = 3;
  sim::SimTime retry_backoff = 200 * sim::kMicrosecond;  // doubles per retry
  sim::SimTime retry_backoff_cap = 5 * sim::kMillisecond;

  /// --- Resilience control plane (all knobs default off) ---
  ResilienceParams resilience;

  ReplicaParams replica;
  std::uint64_t seed = 0x5e21;
};

class FrontDoor {
 public:
  /// Places replicas on `topo`'s hosts: hosts[0] is the client gateway,
  /// the next `params.replicas` hosts get one ReplicaServer each. The
  /// topology, router and simulator must outlive the front door. Throws
  /// std::invalid_argument when the topology has too few hosts or the
  /// parameters are degenerate.
  FrontDoor(sim::Simulator& sim, const net::Topology& topo,
            const net::Router& router, const FrontDoorParams& params);

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Write every key of the universe to all of its owners' stores (directly,
  /// outside simulated time) so gets hit from the first request.
  void preload();

  /// Schedule the arrival process; call before Simulator::run(). All
  /// requests reach a terminal state once the simulator drains.
  void start();

  /// Wire this to faults::FaultInjector::on_event (kNode events): a down
  /// replica host is ejected from the ring and its queued work killed (the
  /// victims fail over); a repaired host resumes serving. A *degraded*
  /// replica host stays in the ring but serves slower by the event's factor
  /// — gray failures are invisible to membership, which is the point.
  void handle_fault(const faults::FaultEvent& event);

  const SloAccountant& slo() const noexcept { return slo_; }
  /// Mutable access for attaching telemetry sinks (rollups, alert engines).
  SloAccountant& slo() noexcept { return slo_; }
  const HashRing& ring() const noexcept { return ring_; }
  std::size_t replica_count() const noexcept { return replicas_.size(); }
  const ReplicaServer& replica(std::size_t i) const { return *replicas_.at(i); }
  net::NodeId gateway() const noexcept { return gateway_; }
  /// Hosts carrying a replica, in ReplicaId order (chaos-plan targets).
  std::vector<net::NodeId> replica_hosts() const;

  /// Resilience counters, with the per-replica breaker trips/denials summed
  /// in (rolled up at call time).
  ResilienceStats resilience_stats() const;
  const CircuitBreaker& breaker(std::size_t i) const { return breakers_.at(i); }
  /// Current retry-budget balance (== burst when the budget is disabled).
  double retry_tokens() const noexcept { return budget_.tokens(); }

 private:
  /// One attempt of the current wave still in flight (wire or queue).
  struct Attempt {
    ReplicaId target = 0;
    sim::SimTime sent = 0;  // gateway dispatch time (attempt RTT anchor)
    bool hedge = false;
  };
  /// An issued request that has not yet reached a terminal state. `wave` is
  /// the retry round and always equals req.attempts; completions carrying a
  /// stale attempts value are responses to abandoned (timed-out) attempts
  /// and are discarded.
  struct Pending {
    Request req;
    std::vector<Attempt> attempts;  // current wave only
    bool hedged = false;            // this wave already hedged
    bool rejected = false;          // an attempt of this wave was shed
    bool expired = false;           // an attempt expired in a replica queue
  };

  void schedule_next_arrival();
  void issue();
  Request make_request();
  /// Launch the current retry wave of `id`: one attempt, plus hedge/timeout
  /// timers as configured.
  void start_wave(std::uint64_t id);
  /// Dispatch one attempt to `target`; registers it in the pending entry.
  void dispatch(std::uint64_t id, ReplicaId target, bool hedge);
  /// Preferred-order live owners for the wave, breaker-filtered. Returns
  /// kInvalidReplica when nothing is sendable.
  ReplicaId pick_target(const Pending& p, bool hedge);
  void deliver(Request req, ReplicaId target);
  void replica_completed(const Request& req, ReplicaOutcome outcome,
                         ReplicaId target);
  /// Response for (req-copy, target) reached the gateway.
  void response_arrived(const Request& req, ReplicaId target,
                        sim::SimTime sent);
  /// The attempt to `target` died in transport (unreachable / killed).
  void attempt_transport_failed(std::uint64_t id, ReplicaId target);
  void on_attempt_timeout(std::uint64_t id, int wave);
  void maybe_hedge(std::uint64_t id, int wave);
  /// The current wave is over with no winner; decide retry vs terminal.
  void wave_exhausted(std::uint64_t id);
  /// Retry gates in order: max_attempts -> deadline -> budget.
  void retry_or_fail(std::uint64_t id);
  void resolve_failed(std::uint64_t id);
  bool remove_attempt(Pending& p, ReplicaId target);
  sim::SimTime backoff_for(int attempts);
  /// One-way fabric delay gateway<->host for `payload` bytes, or -1 when
  /// currently unreachable. Gray-degraded links/endpoints stretch both the
  /// propagation and serialization terms.
  sim::SimTime path_delay(net::NodeId from, net::NodeId to,
                          sim::Bytes payload, std::uint64_t flow_hash) const;
  std::string key_string(std::size_t index) const;

  sim::Simulator* sim_;
  const net::Topology* topo_;
  const net::Router* router_;
  FrontDoorParams params_;
  net::NodeId gateway_ = net::kInvalidNode;
  HashRing ring_;
  std::vector<std::unique_ptr<ReplicaServer>> replicas_;
  std::map<net::NodeId, ReplicaId> host_to_replica_;
  SloAccountant slo_;
  sim::Rng rng_;
  sim::ZipfDistribution key_dist_;
  RetryBudget budget_;
  std::vector<CircuitBreaker> breakers_;  // one per replica
  HedgeDelayTracker hedge_delay_;
  ResilienceStats rstats_;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_request_id_ = 1;
  bool started_ = false;
};

/// Ideal aggregate service capacity (requests/s) of `replica_count` replicas
/// at full batching — where benches center their offered-load sweeps.
double estimated_capacity_qps(const FrontDoorParams& params,
                              std::size_t replica_count);

/// Seeded up/down renewal churn (exponential MTBF/MTTR) over exactly the
/// given hosts — the replica-targeted analogue of
/// faults::make_random_fault_plan, leaving gateways and fabric alone.
faults::FaultPlan make_host_churn_plan(const std::vector<net::NodeId>& hosts,
                                       double mtbf_s, double mttr_s,
                                       sim::SimTime horizon,
                                       std::uint64_t seed);

}  // namespace rb::serve

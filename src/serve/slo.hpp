#pragma once
// SLO accountant: the serving plane's single source of truth for request
// outcomes and latency.
//
// Every request is recorded exactly once as issued and exactly once as
// completed, rejected, or failed — ledger_ok() checks that partition and is
// asserted by the integration tests (including chaos runs). Latency of
// completed requests feeds an exact percentile tracker (p50/p99/p999 are
// headline numbers, so no bucket approximation), and when rb_obs is enabled
// everything mirrors into the global registry (serve.* counters, a latency
// histogram) and each request gets an async trace span on the
// "serve.request" track.

#include <cstdint>

#include "obs/rollup.hpp"
#include "serve/request.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace rb::serve {

class SloAccountant {
 public:
  SloAccountant();

  /// Attach streaming telemetry sinks (both optional, not owned; must
  /// outlive the accountant or be detached with nullptr). Each terminal
  /// outcome is fed to `alerts` as good/bad — completed within
  /// `slo_latency_s` is good; completed-but-late, failed and rejected are
  /// bad (they all burn the availability/latency error budget). `rollup`
  /// gets per-window serve counters plus a latency value series. With
  /// slo_latency_s <= 0 every completion counts good.
  void attach_telemetry(obs::Rollup* rollup, obs::AlertEngine* alerts,
                        double slo_latency_s = 0.0);

  void on_issued(const Request& req);
  void on_completed(const Request& req, sim::SimTime now);
  void on_rejected(const Request& req, Overloaded reason, sim::SimTime now);
  void on_failed(const Request& req, sim::SimTime now);
  /// One failover retry scheduled (not a terminal state).
  void on_retry(const Request& req);

  std::uint64_t issued() const noexcept { return issued_; }
  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t failed() const noexcept { return failed_; }
  std::uint64_t retries() const noexcept { return retries_; }

  /// completed + rejected + failed == issued — every request reached
  /// exactly one terminal state.
  bool ledger_ok() const noexcept {
    return completed_ + rejected_ + failed_ == issued_;
  }

  /// Fraction of issued requests that completed (0 when none issued).
  double availability() const noexcept;
  /// Completed requests per second of simulated time (0 for horizon <= 0).
  double goodput_qps(sim::SimTime horizon) const noexcept;

  /// End-to-end latency (seconds) of completed requests.
  const sim::PercentileTracker& latency_seconds() const noexcept {
    return latency_;
  }

 private:
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  sim::PercentileTracker latency_;
  obs::Rollup* rollup_ = nullptr;          // not owned
  obs::AlertEngine* alerts_ = nullptr;     // not owned
  double slo_latency_s_ = 0.0;
};

}  // namespace rb::serve

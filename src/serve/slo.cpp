#include "serve/slo.hpp"

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rb::serve {

namespace {

struct ServeMetrics {
  obs::Counter* issued;
  obs::Counter* completed;
  obs::Counter* rejected;
  obs::Counter* failed;
  obs::Counter* retries;
  obs::LatencyHistogram* latency_ms;

  static ServeMetrics& get() {
    auto& r = obs::Registry::global();
    static ServeMetrics m{
        &r.counter("serve.requests_issued"),
        &r.counter("serve.requests_completed"),
        &r.counter("serve.requests_rejected"),
        &r.counter("serve.requests_failed"),
        &r.counter("serve.request_retries"),
        &r.histogram("serve.request_latency_ms",
                     obs::exponential_bounds(0.01, 2.0, 24))};
    return m;
  }
};

const char* op_name(OpKind op) noexcept {
  return op == OpKind::kGet ? "get" : "put";
}

}  // namespace

const char* to_string(RequestOutcome outcome) noexcept {
  switch (outcome) {
    case RequestOutcome::kCompleted: return "completed";
    case RequestOutcome::kRejected: return "rejected";
    case RequestOutcome::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(Overloaded reason) noexcept {
  switch (reason) {
    case Overloaded::kQueueFull: return "queue_full";
  }
  return "?";
}

SloAccountant::SloAccountant() = default;

void SloAccountant::attach_telemetry(obs::Rollup* rollup,
                                     obs::AlertEngine* alerts,
                                     double slo_latency_s) {
  rollup_ = rollup;
  alerts_ = alerts;
  slo_latency_s_ = slo_latency_s;
}

void SloAccountant::on_issued(const Request& req) {
  ++issued_;
  if (obs::enabled()) ServeMetrics::get().issued->add();
  if (rollup_ != nullptr) rollup_->counter("serve.issued").record(req.issued, 1.0);
  auto& tracer = obs::TraceRecorder::global();
  if (tracer.enabled()) {
    tracer.async_begin("serve.request", op_name(req.op), req.id, req.issued,
                       {obs::trace_arg("key", req.key)});
  }
}

void SloAccountant::on_completed(const Request& req, sim::SimTime now) {
  ++completed_;
  const double seconds = sim::to_seconds(now - req.issued);
  latency_.add(seconds);
  // Close the causal trace first: whether the full tree was retained as a
  // tail exemplar decides whether this latency observation carries the
  // trace_id into its histogram bucket.
  bool retained = false;
  auto& causal = obs::RequestTracer::global();
  if (causal.enabled() && req.trace.active()) {
    retained =
        causal.finish(req.trace.trace_id, now, obs::TraceOutcome::kCompleted);
  }
  if (obs::enabled()) {
    auto& m = ServeMetrics::get();
    m.completed->add();
    if (retained) {
      m.latency_ms->observe_exemplar(seconds * 1e3, req.trace.trace_id);
    } else {
      m.latency_ms->observe(seconds * 1e3);
    }
  }
  if (rollup_ != nullptr) {
    rollup_->counter("serve.completed").record(now, 1.0);
    rollup_->value("serve.latency_s").record(now, seconds);
  }
  if (alerts_ != nullptr) {
    const bool good = slo_latency_s_ <= 0.0 || seconds <= slo_latency_s_;
    if (good) {
      alerts_->record_good(now);
    } else {
      alerts_->record_bad(now);
    }
  }
  auto& tracer = obs::TraceRecorder::global();
  if (tracer.enabled()) {
    tracer.async_end("serve.request", op_name(req.op), req.id, now,
                     {obs::trace_arg("outcome", "completed"),
                      obs::trace_arg("attempts",
                                     static_cast<std::int64_t>(req.attempts))});
  }
}

void SloAccountant::on_rejected(const Request& req, Overloaded reason,
                                sim::SimTime now) {
  ++rejected_;
  if (obs::enabled()) ServeMetrics::get().rejected->add();
  auto& causal = obs::RequestTracer::global();
  if (causal.enabled() && req.trace.active()) {
    causal.finish(req.trace.trace_id, now, obs::TraceOutcome::kRejected);
  }
  if (rollup_ != nullptr) rollup_->counter("serve.rejected").record(now, 1.0);
  if (alerts_ != nullptr) alerts_->record_bad(now);
  auto& tracer = obs::TraceRecorder::global();
  if (tracer.enabled()) {
    tracer.async_end("serve.request", op_name(req.op), req.id, now,
                     {obs::trace_arg("outcome", "rejected"),
                      obs::trace_arg("reason", to_string(reason))});
  }
}

void SloAccountant::on_failed(const Request& req, sim::SimTime now) {
  ++failed_;
  if (obs::enabled()) ServeMetrics::get().failed->add();
  auto& causal = obs::RequestTracer::global();
  if (causal.enabled() && req.trace.active()) {
    causal.finish(req.trace.trace_id, now, obs::TraceOutcome::kFailed);
  }
  if (rollup_ != nullptr) rollup_->counter("serve.failed").record(now, 1.0);
  if (alerts_ != nullptr) alerts_->record_bad(now);
  auto& tracer = obs::TraceRecorder::global();
  if (tracer.enabled()) {
    tracer.async_end("serve.request", op_name(req.op), req.id, now,
                     {obs::trace_arg("outcome", "failed"),
                      obs::trace_arg("attempts",
                                     static_cast<std::int64_t>(req.attempts))});
  }
}

void SloAccountant::on_retry(const Request& req) {
  static_cast<void>(req);
  ++retries_;
  if (obs::enabled()) ServeMetrics::get().retries->add();
}

double SloAccountant::availability() const noexcept {
  return issued_ == 0
             ? 0.0
             : static_cast<double>(completed_) / static_cast<double>(issued_);
}

double SloAccountant::goodput_qps(sim::SimTime horizon) const noexcept {
  return horizon <= 0
             ? 0.0
             : static_cast<double>(completed_) / sim::to_seconds(horizon);
}

}  // namespace rb::serve

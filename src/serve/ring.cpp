#include "serve/ring.hpp"

#include <stdexcept>
#include <string>

namespace rb::serve {

namespace {

/// FNV-1a with a murmur-style finalizer (same recipe as the LSM bloom
/// hashes; local so serve does not depend on another module's internals).
std::uint64_t hash_bytes(std::string_view data, std::uint64_t salt) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

/// splitmix64 finalizer for vnode positions.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t vnode_position(ReplicaId node, std::size_t vnode) noexcept {
  return mix((static_cast<std::uint64_t>(node) << 20) ^
             static_cast<std::uint64_t>(vnode));
}

}  // namespace

HashRing::HashRing(std::size_t vnodes_per_node) : vnodes_{vnodes_per_node} {
  if (vnodes_ == 0)
    throw std::invalid_argument{"HashRing: vnodes_per_node must be >= 1"};
}

void HashRing::add_node(ReplicaId id) {
  if (contains(id))
    throw std::invalid_argument{"HashRing: duplicate node " +
                                std::to_string(id)};
  nodes_.emplace(id, true);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    std::uint64_t pos = vnode_position(id, v);
    // Linear-probe past the (astronomically rare) position collision so
    // every vnode lands and lookups stay deterministic.
    while (!ring_.emplace(pos, id).second) ++pos;
  }
}

void HashRing::remove_node(ReplicaId id) {
  if (!contains(id))
    throw std::invalid_argument{"HashRing: unknown node " +
                                std::to_string(id)};
  nodes_.erase(id);
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == id ? ring_.erase(it) : std::next(it);
  }
}

void HashRing::set_up(ReplicaId id, bool up) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end())
    throw std::invalid_argument{"HashRing: unknown node " +
                                std::to_string(id)};
  it->second = up;
}

bool HashRing::up(ReplicaId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end())
    throw std::invalid_argument{"HashRing: unknown node " +
                                std::to_string(id)};
  return it->second;
}

bool HashRing::contains(ReplicaId id) const noexcept {
  return nodes_.find(id) != nodes_.end();
}

std::uint64_t HashRing::key_position(std::string_view key) noexcept {
  return hash_bytes(key, 0x5e7f1a9bd3c24e68ULL);
}

Placement HashRing::replicas(std::string_view key, std::size_t r) const {
  if (ring_.empty()) throw std::logic_error{"HashRing: empty ring"};
  Placement out;
  const std::uint64_t pos = key_position(key);
  auto it = ring_.lower_bound(pos);
  if (it == ring_.end()) it = ring_.begin();
  out.shard = it->first;
  const std::size_t want = std::min(r, nodes_.size());
  out.replicas.reserve(want);
  // Walk clockwise collecting distinct owners; at most one full revolution.
  for (std::size_t steps = 0;
       out.replicas.size() < want && steps < ring_.size(); ++steps) {
    const ReplicaId owner = it->second;
    bool seen = false;
    for (const ReplicaId r_id : out.replicas) seen = seen || r_id == owner;
    if (!seen) out.replicas.push_back(owner);
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return out;
}

ReplicaId HashRing::primary(std::string_view key) const {
  return replicas(key, 1).replicas.front();
}

std::vector<ReplicaId> HashRing::live_replicas(std::string_view key,
                                               std::size_t r) const {
  std::vector<ReplicaId> live;
  for (const ReplicaId id : replicas(key, r).replicas) {
    if (nodes_.at(id)) live.push_back(id);
  }
  return live;
}

}  // namespace rb::serve

#pragma once
// Event-driven cluster scheduling engine.
//
// Jobs (dataflow::JobGraph) arrive at given times; their stages unlock as
// dependencies finish; each task runs on one executor slot (a CPU slot or an
// accelerator). The pluggable Policy decides, whenever slots are free and
// tasks are ready, which (task, executor) pair to dispatch next — this is
// the experiment harness for Rec 11's "dynamic scheduling and resource
// allocation strategies".
//
// Fault tolerance: EngineParams can carry a faults::FaultPlan. kMachine
// events kill every task running on that machine (each is re-queued with
// capped exponential backoff, up to max_attempts tries; a task exhausting
// its attempts fails its *job*, never the whole run). kLink/kNode events
// require a fabric topology (EngineParams::fabric); remote input fetches
// then travel as real flows which can be rerouted or fail mid-flight,
// feeding the RunResult's flow counters.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/plan.hpp"
#include "faults/plan.hpp"
#include "net/topology.hpp"
#include "sched/cluster.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace rb::sched {

struct JobArrival {
  dataflow::JobGraph graph;
  sim::SimTime arrival = 0;
};

/// A dispatchable task instance.
struct ReadyTask {
  std::size_t job = 0;
  std::size_t stage = 0;
  std::size_t index = 0;                  // task index within the stage
  const dataflow::StageSpec* spec = nullptr;
  std::size_t locality_machine = 0;       // machine holding its input
  sim::SimTime ready_since = 0;
  int attempt = 1;                        // 1 = first try
};

/// One executor slot.
struct Executor {
  std::size_t id = 0;
  std::size_t machine = 0;
  const node::DeviceModel* device = nullptr;  // points into the Cluster
  bool is_cpu_slot = true;
  bool busy = false;
};

class Policy;

struct EngineParams {
  /// Penalty model for non-local input: bytes fetched over the network.
  bool charge_remote_fetch = true;
  /// Accelerator code path efficiency applied to non-CPU devices in (0,1].
  double accel_efficiency = 0.85;

  /// Optional fault schedule. kMachine events target cluster machines by
  /// index; kLink/kNode events are applied to `fabric` (required for them).
  const faults::FaultPlan* fault_plan = nullptr;
  /// Total tries a task gets before its job is marked failed.
  int max_attempts = 3;
  /// Re-queue delay after a kill: backoff * 2^(attempt-1), capped below.
  sim::SimTime retry_backoff = 10 * sim::kMillisecond;
  sim::SimTime retry_backoff_cap = 10 * sim::kSecond;

  /// Optional datacenter fabric: machine i maps to the i-th host node
  /// (mod host count) and remote input fetches become simulated flows that
  /// contend, reroute around failures, and can fail. When null, remote
  /// fetch stays the scalar bytes/bandwidth model. Mutable because fault
  /// events flip its link/node state during the run.
  net::Topology* fabric = nullptr;
};

struct JobStats {
  std::string name;
  sim::SimTime arrival = 0;
  sim::SimTime completion = 0;  // failure time for failed jobs
  bool failed = false;
  sim::SimTime duration() const noexcept { return completion - arrival; }
};

struct RunResult {
  std::vector<JobStats> jobs;
  sim::SimTime makespan = 0;
  sim::Joules energy = 0.0;
  double cpu_utilization = 0.0;    // busy-slot-time / total-slot-time
  double accel_utilization = 0.0;
  std::uint64_t tasks_run = 0;     // task executions that completed
  std::uint64_t remote_tasks = 0;  // tasks that fetched input remotely

  // --- Fault accounting (all zero when no plan is supplied) ---
  std::uint64_t tasks_dispatched = 0;        // first-attempt dispatches
  std::uint64_t tasks_retried = 0;           // re-dispatches after a kill
  std::uint64_t tasks_killed_by_failure = 0; // machine or fetch-flow death
  std::uint64_t jobs_failed = 0;
  std::uint64_t flows_started = 0;   // fetch flows, when fabric is attached
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_rerouted = 0;
  std::uint64_t flows_failed = 0;
  std::uint64_t flows_cancelled = 0;

  double mean_job_seconds() const;
  /// Fraction of task executions that produced useful work.
  double goodput() const noexcept;
  /// Fraction of jobs that completed despite failures.
  double job_availability() const noexcept;
};

/// Run `jobs` on `cluster` under `policy`. Deterministic for fixed inputs
/// (including the fault plan and its seed).
RunResult run_jobs(const Cluster& cluster, std::vector<JobArrival> jobs,
                   Policy& policy, const EngineParams& params = {});

/// Scheduling policy: given ready tasks and idle executors, choose a pair to
/// dispatch (indices into the two spans), or nullopt to leave slots idle.
/// Called repeatedly until it declines or resources run out.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;

  struct View {
    const Cluster* cluster = nullptr;
    sim::SimTime now = 0;
    /// Per-job count of currently running tasks (for fairness policies).
    const std::vector<std::size_t>* running_per_job = nullptr;
    /// Per-job running tasks split by slot class (for DRF).
    const std::vector<std::size_t>* running_cpu_per_job = nullptr;
    const std::vector<std::size_t>* running_accel_per_job = nullptr;
    std::size_t total_cpu_slots = 0;
    std::size_t total_accel_slots = 0;
    /// Estimated run time of `task` on `exec` including any remote fetch.
    std::function<sim::SimTime(const ReadyTask&, const Executor&)> eta;
    /// Estimated energy of `task` on `exec`.
    std::function<sim::Joules(const ReadyTask&, const Executor&)> energy;
  };

  virtual std::optional<std::pair<std::size_t, std::size_t>> choose(
      const std::vector<ReadyTask>& ready,
      const std::vector<const Executor*>& idle, const View& view) = 0;
};

}  // namespace rb::sched

#include "sched/cluster.hpp"

#include <stdexcept>

namespace rb::sched {

std::size_t Cluster::total_slots() const noexcept {
  std::size_t n = 0;
  for (const auto& m : machines) {
    n += static_cast<std::size_t>(m.cpu_slots) + m.accelerators.size();
  }
  return n;
}

Cluster make_cpu_cluster(std::size_t n, int cpu_slots) {
  if (n == 0) throw std::invalid_argument{"make_cpu_cluster: n == 0"};
  if (cpu_slots <= 0)
    throw std::invalid_argument{"make_cpu_cluster: cpu_slots <= 0"};
  Cluster cluster;
  const auto cpu = node::find_device(node::DeviceKind::kCpu);
  cluster.machines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cluster.machines.push_back(
        Machine{"m" + std::to_string(i), cpu, cpu_slots, {}});
  }
  return cluster;
}

Cluster make_hetero_cluster(std::size_t n,
                            const std::vector<node::DeviceKind>& accels,
                            std::size_t accel_every, int cpu_slots) {
  if (accel_every == 0)
    throw std::invalid_argument{"make_hetero_cluster: accel_every == 0"};
  Cluster cluster = make_cpu_cluster(n, cpu_slots);
  for (std::size_t i = 0; i < n; i += accel_every) {
    for (const auto kind : accels) {
      cluster.machines[i].accelerators.push_back(node::find_device(kind));
    }
  }
  return cluster;
}

}  // namespace rb::sched

#pragma once
// Heterogeneous cluster description for the scheduling engine (Rec 11:
// "with edge computing and cloud computing environments calling for
// heterogeneous hardware platforms, we propose creation of dynamic
// scheduling and resource allocation strategies").

#include <cstdint>
#include <string>
#include <vector>

#include "node/device.hpp"

namespace rb::sched {

/// One physical machine: a host CPU plus optional attached accelerators.
/// `cpu_slots` is the number of concurrent tasks the host CPU runs.
struct Machine {
  std::string name;
  node::DeviceModel cpu;
  int cpu_slots = 8;
  std::vector<node::DeviceModel> accelerators;  // one slot each
};

struct Cluster {
  std::vector<Machine> machines;
  /// Effective per-machine network bandwidth for remote input fetch (GB/s).
  double network_gbs = 1.25;  // 10GbE

  std::size_t machine_count() const noexcept { return machines.size(); }
  std::size_t total_slots() const noexcept;
};

/// `n` identical CPU-only machines.
Cluster make_cpu_cluster(std::size_t n, int cpu_slots = 8);

/// `n` machines; every `accel_every`-th machine also carries the given
/// accelerator kinds (mixed fleet — the realistic European-DC case the
/// roadmap's Finding 2 worries about paying for).
Cluster make_hetero_cluster(std::size_t n,
                            const std::vector<node::DeviceKind>& accels,
                            std::size_t accel_every = 2, int cpu_slots = 8);

}  // namespace rb::sched

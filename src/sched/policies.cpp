#include "sched/policies.hpp"

#include <limits>

namespace rb::sched {

namespace {

/// Index of the oldest-arrival ready task (FIFO order with stable ties).
std::size_t oldest_task(const std::vector<ReadyTask>& ready) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < ready.size(); ++i) {
    const auto& a = ready[i];
    const auto& b = ready[best];
    if (a.job < b.job || (a.job == b.job && a.ready_since < b.ready_since)) {
      best = i;
    }
  }
  return best;
}

}  // namespace

std::optional<std::pair<std::size_t, std::size_t>> FifoPolicy::choose(
    const std::vector<ReadyTask>& ready,
    const std::vector<const Executor*>& idle, const View&) {
  if (ready.empty() || idle.empty()) return std::nullopt;
  return std::make_pair(oldest_task(ready), std::size_t{0});
}

std::optional<std::pair<std::size_t, std::size_t>> FairPolicy::choose(
    const std::vector<ReadyTask>& ready,
    const std::vector<const Executor*>& idle, const View& view) {
  if (ready.empty() || idle.empty()) return std::nullopt;
  const auto& running = *view.running_per_job;
  std::size_t best = 0;
  for (std::size_t i = 1; i < ready.size(); ++i) {
    if (running[ready[i].job] < running[ready[best].job]) best = i;
  }
  return std::make_pair(best, std::size_t{0});
}

std::optional<std::pair<std::size_t, std::size_t>> LocalityPolicy::choose(
    const std::vector<ReadyTask>& ready,
    const std::vector<const Executor*>& idle, const View&) {
  if (ready.empty() || idle.empty()) return std::nullopt;
  // Prefer any (task, slot) pair that is local; among those, FIFO task order.
  std::optional<std::pair<std::size_t, std::size_t>> local_choice;
  for (std::size_t t = 0; t < ready.size(); ++t) {
    for (std::size_t e = 0; e < idle.size(); ++e) {
      if (idle[e]->machine == ready[t].locality_machine) {
        if (!local_choice || ready[t].job < ready[local_choice->first].job) {
          local_choice = std::make_pair(t, e);
        }
        break;
      }
    }
  }
  if (local_choice) return local_choice;
  return std::make_pair(oldest_task(ready), std::size_t{0});
}

std::optional<std::pair<std::size_t, std::size_t>> HeteroAwarePolicy::choose(
    const std::vector<ReadyTask>& ready,
    const std::vector<const Executor*>& idle, const View& view) {
  if (ready.empty() || idle.empty()) return std::nullopt;
  // Heaviest ready task (HEFT's upward-rank degenerates to task weight for
  // data-parallel stages) ...
  std::size_t task = 0;
  double heaviest = -1.0;
  for (std::size_t t = 0; t < ready.size(); ++t) {
    const double w = ready[t].spec->per_task_kernel.flops;
    if (w > heaviest) {
      heaviest = w;
      task = t;
    }
  }
  // ... on the executor finishing it earliest.
  std::size_t exec = 0;
  sim::SimTime best_eta = std::numeric_limits<sim::SimTime>::max();
  for (std::size_t e = 0; e < idle.size(); ++e) {
    const sim::SimTime eta = view.eta(ready[task], *idle[e]);
    if (eta < best_eta) {
      best_eta = eta;
      exec = e;
    }
  }
  return std::make_pair(task, exec);
}

std::optional<std::pair<std::size_t, std::size_t>> EnergyAwarePolicy::choose(
    const std::vector<ReadyTask>& ready,
    const std::vector<const Executor*>& idle, const View& view) {
  if (ready.empty() || idle.empty()) return std::nullopt;
  const std::size_t task = oldest_task(ready);
  std::size_t exec = 0;
  double best_energy = std::numeric_limits<double>::infinity();
  sim::SimTime best_eta = std::numeric_limits<sim::SimTime>::max();
  for (std::size_t e = 0; e < idle.size(); ++e) {
    const double joules = view.energy(ready[task], *idle[e]);
    const sim::SimTime eta = view.eta(ready[task], *idle[e]);
    if (joules < best_energy ||
        (joules == best_energy && eta < best_eta)) {
      best_energy = joules;
      best_eta = eta;
      exec = e;
    }
  }
  return std::make_pair(task, exec);
}

std::optional<std::pair<std::size_t, std::size_t>> DrfPolicy::choose(
    const std::vector<ReadyTask>& ready,
    const std::vector<const Executor*>& idle, const View& view) {
  if (ready.empty() || idle.empty()) return std::nullopt;
  const auto& cpu_use = *view.running_cpu_per_job;
  const auto& accel_use = *view.running_accel_per_job;
  const auto dominant_share = [&](std::size_t job) {
    const double cpu_share =
        view.total_cpu_slots == 0
            ? 0.0
            : static_cast<double>(cpu_use[job]) /
                  static_cast<double>(view.total_cpu_slots);
    const double accel_share =
        view.total_accel_slots == 0
            ? 0.0
            : static_cast<double>(accel_use[job]) /
                  static_cast<double>(view.total_accel_slots);
    return std::max(cpu_share, accel_share);
  };
  std::size_t task = 0;
  double best_share = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < ready.size(); ++t) {
    const double share = dominant_share(ready[t].job);
    if (share < best_share ||
        (share == best_share && ready[t].job < ready[task].job)) {
      best_share = share;
      task = t;
    }
  }
  std::size_t exec = 0;
  sim::SimTime best_eta = std::numeric_limits<sim::SimTime>::max();
  for (std::size_t e = 0; e < idle.size(); ++e) {
    const auto eta = view.eta(ready[task], *idle[e]);
    if (eta < best_eta) {
      best_eta = eta;
      exec = e;
    }
  }
  return std::make_pair(task, exec);
}

std::optional<std::pair<std::size_t, std::size_t>> RandomPolicy::choose(
    const std::vector<ReadyTask>& ready,
    const std::vector<const Executor*>& idle, const View&) {
  if (ready.empty() || idle.empty()) return std::nullopt;
  return std::make_pair(
      static_cast<std::size_t>(rng_.uniform_index(ready.size())),
      static_cast<std::size_t>(rng_.uniform_index(idle.size())));
}

}  // namespace rb::sched

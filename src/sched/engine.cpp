#include "sched/engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "node/energy.hpp"
#include "node/roofline.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace rb::sched {

namespace {

const obs::Logger& sched_log() {
  static const obs::Logger logger{"sched"};
  return logger;
}

struct SchedMetrics {
  obs::Counter* dispatched;
  obs::Counter* retried;
  obs::Counter* killed;
  obs::Counter* completed;
  obs::Counter* jobs_failed;

  static SchedMetrics& get() {
    auto& r = obs::Registry::global();
    static SchedMetrics m{&r.counter("sched.tasks_dispatched"),
                          &r.counter("sched.tasks_retried"),
                          &r.counter("sched.tasks_killed"),
                          &r.counter("sched.tasks_completed"),
                          &r.counter("sched.jobs_failed")};
    return m;
  }
};

/// Deterministic pseudo-random input placement for a task.
std::size_t place_input(std::size_t job, std::size_t stage, std::size_t index,
                        std::size_t machines) {
  const std::uint64_t h =
      (job * 0x9e3779b97f4a7c15ULL) ^ (stage * 0xbf58476d1ce4e5b9ULL) ^
      (index * 0x94d049bb133111ebULL);
  return static_cast<std::size_t>((h >> 17) % machines);
}

struct StageState {
  std::size_t remaining = 0;  // tasks not yet finished
  bool done = false;
  bool released = false;  // tasks added to the ready set
};

struct JobState {
  dataflow::JobGraph graph{"?"};
  sim::SimTime arrival = 0;
  std::vector<StageState> stages;
  std::size_t stages_done = 0;
  bool finished = false;
  bool failed = false;
};

/// Bookkeeping for a dispatched task occupying an executor.
struct Running {
  ReadyTask task;
  bool fetching = false;           // waiting on a fetch flow
  net::FlowId fetch_flow = 0;
  sim::EventHandle done_event;     // compute completion, when not fetching
  sim::SimTime planned_end = 0;    // refund busy time if killed mid-compute
  std::uint64_t span_id = 0;       // obs trace span of this attempt
};

}  // namespace

RunResult run_jobs(const Cluster& cluster, std::vector<JobArrival> jobs,
                   Policy& policy, const EngineParams& params) {
  if (cluster.machines.empty())
    throw std::invalid_argument{"run_jobs: empty cluster"};
  if (params.accel_efficiency <= 0.0 || params.accel_efficiency > 1.0)
    throw std::invalid_argument{"run_jobs: accel_efficiency out of (0, 1]"};
  if (params.fault_plan != nullptr) {
    if (params.max_attempts < 1)
      throw std::invalid_argument{"run_jobs: max_attempts must be >= 1"};
    if (params.retry_backoff < 0 || params.retry_backoff_cap < 0)
      throw std::invalid_argument{"run_jobs: negative retry backoff"};
    for (const auto& event : params.fault_plan->events()) {
      if (event.target == faults::FaultTarget::kMachine) {
        if (event.id >= cluster.machines.size())
          throw std::invalid_argument{"run_jobs: fault plan targets unknown "
                                      "machine"};
      } else if (params.fabric == nullptr) {
        throw std::invalid_argument{
            "run_jobs: fault plan has link/node events but no fabric topology "
            "was supplied"};
      }
    }
  }

  // --- Build executors ---
  std::vector<Executor> executors;
  for (std::size_t m = 0; m < cluster.machines.size(); ++m) {
    const auto& machine = cluster.machines[m];
    for (int s = 0; s < machine.cpu_slots; ++s) {
      executors.push_back(
          Executor{executors.size(), m, &machine.cpu, true, false});
    }
    for (const auto& accel : machine.accelerators) {
      executors.push_back(
          Executor{executors.size(), m, &accel, false, false});
    }
  }

  // --- Job state ---
  std::vector<JobState> state;
  state.reserve(jobs.size());
  for (auto& j : jobs) {
    JobState js;
    js.stages.resize(j.graph.stage_count());
    for (std::size_t s = 0; s < j.graph.stage_count(); ++s) {
      js.stages[s].remaining = j.graph.stage(s).task_count;
    }
    js.arrival = j.arrival;
    js.graph = std::move(j.graph);
    state.push_back(std::move(js));
  }

  sim::Simulator sim;
  std::vector<ReadyTask> ready;
  std::vector<std::size_t> running_per_job(state.size(), 0);
  std::vector<std::size_t> running_cpu_per_job(state.size(), 0);
  std::vector<std::size_t> running_accel_per_job(state.size(), 0);
  std::vector<bool> machine_up(cluster.machines.size(), true);
  std::vector<std::optional<Running>> running(executors.size());
  RunResult result;
  result.jobs.resize(state.size());
  for (std::size_t j = 0; j < state.size(); ++j) {
    result.jobs[j].name = state[j].graph.name();
    result.jobs[j].arrival = state[j].arrival;
  }

  // --- Optional fabric for remote fetches (fault-aware flow simulation) ---
  std::optional<net::Router> router;
  std::optional<net::FlowSimulator> fabric;
  std::vector<net::NodeId> hosts;
  if (params.fabric != nullptr) {
    hosts = params.fabric->nodes_of_kind(net::NodeKind::kHost);
    if (hosts.empty())
      throw std::invalid_argument{"run_jobs: fabric topology has no hosts"};
    router.emplace(*params.fabric);
    fabric.emplace(sim, *params.fabric, *router);
  }
  const auto host_of = [&](std::size_t machine) {
    return hosts[machine % hosts.size()];
  };

  double cpu_busy_s = 0.0, accel_busy_s = 0.0;
  std::size_t cpu_slots = 0, accel_slots = 0;
  for (const auto& e : executors) (e.is_cpu_slot ? cpu_slots : accel_slots)++;

  // --- Telemetry (all guarded by obs::enabled() at use sites) ---
  const bool observed = obs::enabled();
  std::uint64_t next_span_id = 1;
  std::vector<int> busy_per_machine(cluster.machines.size(), 0);
  std::vector<obs::Gauge*> occupancy_gauges;
  if (observed) {
    occupancy_gauges.reserve(cluster.machines.size());
    for (std::size_t m = 0; m < cluster.machines.size(); ++m) {
      occupancy_gauges.push_back(&obs::Registry::global().gauge(
          "sched.machine_busy_slots", {{"machine", std::to_string(m)}}));
    }
  }
  const auto note_occupancy = [&](std::size_t machine, int delta) {
    if (!observed) return;
    busy_per_machine[machine] += delta;
    occupancy_gauges[machine]->set(
        static_cast<double>(busy_per_machine[machine]));
  };

  // --- Cost model shared by the engine and the policy view ---
  const auto compute_time = [&](const ReadyTask& task,
                                const Executor& exec) -> sim::SimTime {
    node::DeviceModel device = *exec.device;
    if (!exec.is_cpu_slot) {
      device.peak_gflops *= params.accel_efficiency;
    } else {
      // A CPU slot is one share of the socket: divide capability by slots.
      const auto slots = static_cast<double>(
          cluster.machines[exec.machine].cpu_slots);
      device.peak_gflops /= slots;
      device.mem_bw_gbs /= slots;
    }
    return node::offload_time(device, task.spec->per_task_kernel);
  };
  const auto task_time = [&](const ReadyTask& task,
                             const Executor& exec) -> sim::SimTime {
    sim::SimTime t = compute_time(task, exec);
    if (params.charge_remote_fetch && task.locality_machine != exec.machine) {
      const double fetch_s =
          task.spec->per_task_kernel.bytes / (cluster.network_gbs * 1e9);
      t += sim::from_seconds(fetch_s);
    }
    return std::max<sim::SimTime>(t, 1);
  };
  const auto energy_for = [&](const Executor& exec,
                              double seconds) -> sim::Joules {
    const auto& device = *exec.device;
    double active_share = 1.0;
    if (exec.is_cpu_slot) {
      active_share = 1.0 / static_cast<double>(
                               cluster.machines[exec.machine].cpu_slots);
    }
    return (device.active_power - device.idle_power) * active_share * seconds;
  };
  const auto task_energy = [&](const ReadyTask& task,
                               const Executor& exec) -> sim::Joules {
    return energy_for(exec, sim::to_seconds(task_time(task, exec)));
  };

  Policy::View view;
  view.cluster = &cluster;
  view.running_per_job = &running_per_job;
  view.running_cpu_per_job = &running_cpu_per_job;
  view.running_accel_per_job = &running_accel_per_job;
  view.total_cpu_slots = cpu_slots;
  view.total_accel_slots = accel_slots;
  view.eta = [&](const ReadyTask& t, const Executor& e) {
    return task_time(t, e);
  };
  view.energy = [&](const ReadyTask& t, const Executor& e) {
    return task_energy(t, e);
  };

  const auto backoff_for = [&](int attempt) -> sim::SimTime {
    sim::SimTime d = std::max<sim::SimTime>(params.retry_backoff, 1);
    for (int i = 1; i < attempt && d < params.retry_backoff_cap; ++i) d *= 2;
    return std::min(d, std::max<sim::SimTime>(params.retry_backoff_cap, 1));
  };

  // Forward declarations of the mutually recursive steps.
  std::function<void()> dispatch;
  std::function<void(std::size_t)> release_ready_stages;
  std::function<void(std::size_t)> on_task_done;     // by executor id
  std::function<void(std::size_t)> start_compute;    // by executor id
  std::function<void(std::size_t)> kill_running;     // by executor id
  std::function<void(ReadyTask)> requeue_or_fail;
  std::function<void(std::size_t)> fail_job;

  const auto free_executor = [&](std::size_t exec_id, std::size_t j) {
    const auto& exec = executors[exec_id];
    executors[exec_id].busy = false;
    note_occupancy(exec.machine, -1);
    --running_per_job[j];
    if (exec.is_cpu_slot) {
      --running_cpu_per_job[j];
    } else {
      --running_accel_per_job[j];
    }
  };

  release_ready_stages = [&](std::size_t j) {
    auto& js = state[j];
    if (js.failed) return;
    std::vector<bool> done(js.stages.size());
    for (std::size_t s = 0; s < js.stages.size(); ++s) {
      done[s] = js.stages[s].done;
    }
    for (const std::size_t s : js.graph.runnable(done)) {
      if (js.stages[s].released) continue;
      js.stages[s].released = true;
      const auto& spec = js.graph.stage(s);
      for (std::size_t i = 0; i < spec.task_count; ++i) {
        ready.push_back(ReadyTask{
            j, s, i, &js.graph.stage(s),
            place_input(j, s, i, cluster.machine_count()), sim.now(), 1});
      }
    }
  };

  fail_job = [&](std::size_t j) {
    auto& js = state[j];
    if (js.failed || js.finished) return;
    js.failed = true;
    ++result.jobs_failed;
    result.jobs[j].failed = true;
    result.jobs[j].completion = sim.now();
    if (observed) {
      SchedMetrics::get().jobs_failed->add();
      obs::TraceRecorder::global().async_end(
          "sched.job", js.graph.name(), j, sim.now(),
          {obs::trace_arg("outcome", "failed")});
    }
    sched_log().error() << "job " << js.graph.name()
                        << " failed: task exhausted its attempts";
    // Abandon this job's queued tasks; running ones finish and are counted
    // in tasks_run but no longer advance any stage.
    ready.erase(std::remove_if(ready.begin(), ready.end(),
                               [j](const ReadyTask& t) { return t.job == j; }),
                ready.end());
  };

  requeue_or_fail = [&](ReadyTask task) {
    auto& js = state[task.job];
    if (js.failed || js.finished) return;
    if (task.attempt >= params.max_attempts) {
      fail_job(task.job);
      return;
    }
    const sim::SimTime delay = backoff_for(task.attempt);
    sched_log().info() << "task j" << task.job << "/s" << task.stage << "/"
                       << task.index << " attempt " << task.attempt
                       << " killed; retrying in " << sim::to_seconds(delay)
                       << " s";
    task.attempt += 1;
    sim.schedule_in(delay, [&, task] {
      if (state[task.job].failed || state[task.job].finished) return;
      ReadyTask t = task;
      t.ready_since = sim.now();
      ready.push_back(t);
      dispatch();
    });
  };

  on_task_done = [&](std::size_t exec_id) {
    const Running run = std::move(*running[exec_id]);
    running[exec_id].reset();
    const std::size_t j = run.task.job;
    const std::size_t s = run.task.stage;
    auto& js = state[j];
    free_executor(exec_id, j);
    ++result.tasks_run;
    if (observed) {
      SchedMetrics::get().completed->add();
      obs::TraceRecorder::global().async_end(
          "sched.task", run.task.spec->name, run.span_id, sim.now(),
          {obs::trace_arg("outcome", "ok")});
    }
    if (js.failed) {
      dispatch();
      return;
    }
    auto& stage = js.stages[s];
    if (--stage.remaining == 0) {
      stage.done = true;
      ++js.stages_done;
      if (js.stages_done == js.stages.size()) {
        js.finished = true;
        result.jobs[j].completion = sim.now();
        if (observed) {
          obs::TraceRecorder::global().async_end(
              "sched.job", js.graph.name(), j, sim.now(),
              {obs::trace_arg("outcome", "completed")});
        }
      } else {
        // Downstream stages become ready after the shuffle data lands.
        const auto& spec = js.graph.stage(s);
        const double shuffle_bytes =
            static_cast<double>(spec.shuffle_bytes_per_task) *
            static_cast<double>(spec.task_count);
        const double cluster_bw =
            cluster.network_gbs * 1e9 *
            static_cast<double>(cluster.machine_count());
        const sim::SimTime delay =
            sim::from_seconds(shuffle_bytes / cluster_bw);
        sim.schedule_in(std::max<sim::SimTime>(delay, 1), [&, j] {
          release_ready_stages(j);
          dispatch();
        });
        return;  // dispatch happens after release
      }
    }
    dispatch();
  };

  start_compute = [&](std::size_t exec_id) {
    auto& run = *running[exec_id];
    run.fetching = false;
    const auto& exec = executors[exec_id];
    const sim::SimTime t =
        std::max<sim::SimTime>(compute_time(run.task, exec), 1);
    const double seconds = sim::to_seconds(t);
    result.energy += energy_for(exec, seconds);
    (exec.is_cpu_slot ? cpu_busy_s : accel_busy_s) += seconds;
    run.planned_end = sim.now() + t;
    run.done_event = sim.schedule_in(t, [&, exec_id] { on_task_done(exec_id); });
  };

  kill_running = [&](std::size_t exec_id) {
    Running run = std::move(*running[exec_id]);
    running[exec_id].reset();
    run.done_event.cancel();
    if (run.fetching && fabric) fabric->cancel_flow(run.fetch_flow);
    // Refund the un-run tail of a planned compute window so utilization
    // reflects work actually performed.
    if (!run.fetching && run.planned_end > sim.now()) {
      const double refund = sim::to_seconds(run.planned_end - sim.now());
      (executors[exec_id].is_cpu_slot ? cpu_busy_s : accel_busy_s) -= refund;
    }
    free_executor(exec_id, run.task.job);
    ++result.tasks_killed_by_failure;
    if (observed) {
      SchedMetrics::get().killed->add();
      obs::TraceRecorder::global().async_end(
          "sched.task", run.task.spec->name, run.span_id, sim.now(),
          {obs::trace_arg("outcome", "killed")});
    }
    requeue_or_fail(run.task);
  };

  dispatch = [&] {
    for (;;) {
      if (ready.empty()) return;
      std::vector<const Executor*> idle;
      for (const auto& e : executors) {
        if (!e.busy && machine_up[e.machine]) idle.push_back(&e);
      }
      if (idle.empty()) return;
      view.now = sim.now();
      const auto choice = policy.choose(ready, idle, view);
      if (!choice) return;
      const auto [task_idx, exec_idx] = *choice;
      if (task_idx >= ready.size() || exec_idx >= idle.size())
        throw std::logic_error{"Policy returned out-of-range choice"};
      const ReadyTask task = ready[task_idx];
      auto& exec = executors[idle[exec_idx]->id];

      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(task_idx));
      exec.busy = true;
      ++running_per_job[task.job];
      if (exec.is_cpu_slot) {
        ++running_cpu_per_job[task.job];
      } else {
        ++running_accel_per_job[task.job];
      }
      if (task.attempt == 1) {
        ++result.tasks_dispatched;
      } else {
        ++result.tasks_retried;
      }
      std::uint64_t span_id = 0;
      if (observed) {
        (task.attempt == 1 ? SchedMetrics::get().dispatched
                           : SchedMetrics::get().retried)
            ->add();
        note_occupancy(exec.machine, +1);
        span_id = next_span_id++;
        obs::TraceRecorder::global().async_begin(
            "sched.task", task.spec->name, span_id, sim.now(),
            {obs::trace_arg("job", static_cast<std::uint64_t>(task.job)),
             obs::trace_arg("stage", static_cast<std::uint64_t>(task.stage)),
             obs::trace_arg("index", static_cast<std::uint64_t>(task.index)),
             obs::trace_arg("attempt", static_cast<std::int64_t>(task.attempt)),
             obs::trace_arg("machine",
                            static_cast<std::uint64_t>(exec.machine))});
      }
      const std::size_t exec_id = exec.id;
      const bool remote = params.charge_remote_fetch &&
                          task.locality_machine != exec.machine;
      if (remote) ++result.remote_tasks;

      const sim::Bytes fetch_bytes = static_cast<sim::Bytes>(
          task.spec->per_task_kernel.bytes);
      if (fabric && remote && fetch_bytes > 0 &&
          host_of(task.locality_machine) != host_of(exec.machine)) {
        // Fetch the input over the simulated fabric; compute starts when the
        // flow lands. A failed flow (disconnection) kills the attempt.
        Running run;
        run.task = task;
        run.fetching = true;
        run.span_id = span_id;
        running[exec_id] = std::move(run);
        try {
          const auto flow_id = fabric->start_flow(
              host_of(task.locality_machine), host_of(exec.machine),
              fetch_bytes, [&, exec_id](const net::FlowRecord& rec) {
                auto& slot = running[exec_id];
                if (!slot || !slot->fetching || slot->fetch_flow != rec.id)
                  return;  // stale: the attempt was killed meanwhile
                if (rec.outcome == net::FlowOutcome::kFailed) {
                  kill_running(exec_id);
                  dispatch();
                  return;
                }
                (executors[exec_id].is_cpu_slot ? cpu_busy_s : accel_busy_s) +=
                    sim::to_seconds(rec.finish - rec.start);
                start_compute(exec_id);
              });
          running[exec_id]->fetch_flow = flow_id;
        } catch (const net::NoRouteError&) {
          // Input unreachable right now (host down / partition): the attempt
          // dies immediately and retries after backoff.
          kill_running(exec_id);
        }
        continue;
      }

      const sim::SimTime t = task_time(task, exec);
      const sim::Joules e = task_energy(task, exec);
      result.energy += e;
      (exec.is_cpu_slot ? cpu_busy_s : accel_busy_s) += sim::to_seconds(t);
      Running run;
      run.task = task;
      run.planned_end = sim.now() + t;
      run.span_id = span_id;
      running[exec_id] = std::move(run);
      running[exec_id]->done_event =
          sim.schedule_in(t, [&, exec_id] { on_task_done(exec_id); });
    }
  };

  // --- Fault plan replay ---
  const auto apply_machine_event = [&](const faults::FaultEvent& event) {
    const auto m = static_cast<std::size_t>(event.id);
    if (machine_up[m] == event.up) return;
    machine_up[m] = event.up;
    if (!event.up) {
      for (const auto& e : executors) {
        if (e.machine == m && running[e.id]) kill_running(e.id);
      }
    }
    dispatch();
  };
  const auto apply_net_event = [&](const faults::FaultEvent& event) {
    if (event.target == faults::FaultTarget::kLink) {
      params.fabric->set_link_up(event.id, event.up);
    } else {
      params.fabric->set_node_up(event.id, event.up);
    }
    if (fabric) fabric->handle_topology_change();
  };

  for (std::size_t j = 0; j < state.size(); ++j) {
    sim.schedule_at(state[j].arrival, [&, j] {
      if (observed) {
        obs::TraceRecorder::global().async_begin(
            "sched.job", state[j].graph.name(), j, sim.now(),
            {obs::trace_arg("stages",
                            static_cast<std::uint64_t>(state[j].stages.size()))});
      }
      release_ready_stages(j);
      dispatch();
    });
  }
  if (params.fault_plan != nullptr) {
    for (const auto& event : params.fault_plan->events()) {
      if (event.target == faults::FaultTarget::kMachine) {
        sim.schedule_at(event.at, [&, event] { apply_machine_event(event); });
      } else {
        sim.schedule_at(event.at, [&, event] { apply_net_event(event); });
      }
    }
  }
  sim.run();

  for (std::size_t j = 0; j < state.size(); ++j) {
    auto& js = state[j];
    if (js.finished || js.failed) continue;
    if (params.fault_plan != nullptr) {
      // Starved to death (e.g. every machine down past the last retry):
      // count the job failed rather than pretending the run deadlocked.
      js.failed = true;
      ++result.jobs_failed;
      result.jobs[j].failed = true;
      result.jobs[j].completion = sim.now();
      if (observed) {
        SchedMetrics::get().jobs_failed->add();
        obs::TraceRecorder::global().async_end(
            "sched.job", js.graph.name(), j, sim.now(),
            {obs::trace_arg("outcome", "starved")});
      }
      sched_log().error() << "job " << js.graph.name()
                          << " starved: unfinished when the run drained";
    } else {
      throw std::logic_error{"run_jobs: job did not finish (deadlock?)"};
    }
  }

  result.makespan = 0;
  for (const auto& stats : result.jobs) {
    result.makespan = std::max(result.makespan, stats.completion);
  }
  const double horizon = sim::to_seconds(result.makespan);
  if (horizon > 0.0) {
    result.cpu_utilization =
        cpu_slots == 0 ? 0.0
                       : cpu_busy_s / (static_cast<double>(cpu_slots) * horizon);
    result.accel_utilization =
        accel_slots == 0
            ? 0.0
            : accel_busy_s / (static_cast<double>(accel_slots) * horizon);
  }
  // Cluster idle power over the whole horizon.
  for (const auto& machine : cluster.machines) {
    result.energy += machine.cpu.idle_power * horizon;
    for (const auto& accel : machine.accelerators) {
      result.energy += accel.idle_power * horizon;
    }
  }
  if (fabric) {
    result.flows_started = fabric->started_flows();
    result.flows_completed = fabric->completed_flows();
    result.flows_rerouted = fabric->rerouted_flows();
    result.flows_failed = fabric->failed_flows();
    result.flows_cancelled = fabric->cancelled_flows();
  }
  return result;
}

double RunResult::mean_job_seconds() const {
  if (jobs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& j : jobs) total += sim::to_seconds(j.duration());
  return total / static_cast<double>(jobs.size());
}

double RunResult::goodput() const noexcept {
  const std::uint64_t attempts = tasks_run + tasks_killed_by_failure;
  if (attempts == 0) return 1.0;
  return static_cast<double>(tasks_run) / static_cast<double>(attempts);
}

double RunResult::job_availability() const noexcept {
  if (jobs.empty()) return 1.0;
  return 1.0 - static_cast<double>(jobs_failed) /
                   static_cast<double>(jobs.size());
}

}  // namespace rb::sched

#include "sched/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "node/energy.hpp"
#include "node/roofline.hpp"

namespace rb::sched {

namespace {

/// Deterministic pseudo-random input placement for a task.
std::size_t place_input(std::size_t job, std::size_t stage, std::size_t index,
                        std::size_t machines) {
  const std::uint64_t h =
      (job * 0x9e3779b97f4a7c15ULL) ^ (stage * 0xbf58476d1ce4e5b9ULL) ^
      (index * 0x94d049bb133111ebULL);
  return static_cast<std::size_t>((h >> 17) % machines);
}

struct StageState {
  std::size_t remaining = 0;  // tasks not yet finished
  bool done = false;
  bool released = false;  // tasks added to the ready set
};

struct JobState {
  dataflow::JobGraph graph{"?"};
  sim::SimTime arrival = 0;
  std::vector<StageState> stages;
  std::size_t stages_done = 0;
  bool finished = false;
};

}  // namespace

RunResult run_jobs(const Cluster& cluster, std::vector<JobArrival> jobs,
                   Policy& policy, const EngineParams& params) {
  if (cluster.machines.empty())
    throw std::invalid_argument{"run_jobs: empty cluster"};
  if (params.accel_efficiency <= 0.0 || params.accel_efficiency > 1.0)
    throw std::invalid_argument{"run_jobs: accel_efficiency out of (0, 1]"};

  // --- Build executors ---
  std::vector<Executor> executors;
  for (std::size_t m = 0; m < cluster.machines.size(); ++m) {
    const auto& machine = cluster.machines[m];
    for (int s = 0; s < machine.cpu_slots; ++s) {
      executors.push_back(
          Executor{executors.size(), m, &machine.cpu, true, false});
    }
    for (const auto& accel : machine.accelerators) {
      executors.push_back(
          Executor{executors.size(), m, &accel, false, false});
    }
  }

  // --- Job state ---
  std::vector<JobState> state;
  state.reserve(jobs.size());
  for (auto& j : jobs) {
    JobState js;
    js.stages.resize(j.graph.stage_count());
    for (std::size_t s = 0; s < j.graph.stage_count(); ++s) {
      js.stages[s].remaining = j.graph.stage(s).task_count;
    }
    js.arrival = j.arrival;
    js.graph = std::move(j.graph);
    state.push_back(std::move(js));
  }

  sim::Simulator sim;
  std::vector<ReadyTask> ready;
  std::vector<std::size_t> running_per_job(state.size(), 0);
  std::vector<std::size_t> running_cpu_per_job(state.size(), 0);
  std::vector<std::size_t> running_accel_per_job(state.size(), 0);
  RunResult result;
  result.jobs.resize(state.size());
  for (std::size_t j = 0; j < state.size(); ++j) {
    result.jobs[j].name = state[j].graph.name();
    result.jobs[j].arrival = state[j].arrival;
  }

  double cpu_busy_s = 0.0, accel_busy_s = 0.0;
  std::size_t cpu_slots = 0, accel_slots = 0;
  for (const auto& e : executors) (e.is_cpu_slot ? cpu_slots : accel_slots)++;

  // --- Cost model shared by the engine and the policy view ---
  const auto task_time = [&](const ReadyTask& task,
                             const Executor& exec) -> sim::SimTime {
    node::DeviceModel device = *exec.device;
    if (!exec.is_cpu_slot) {
      device.peak_gflops *= params.accel_efficiency;
    } else {
      // A CPU slot is one share of the socket: divide capability by slots.
      const auto slots = static_cast<double>(
          cluster.machines[exec.machine].cpu_slots);
      device.peak_gflops /= slots;
      device.mem_bw_gbs /= slots;
    }
    sim::SimTime t = node::offload_time(device, task.spec->per_task_kernel);
    if (params.charge_remote_fetch && task.locality_machine != exec.machine) {
      const double fetch_s =
          task.spec->per_task_kernel.bytes / (cluster.network_gbs * 1e9);
      t += sim::from_seconds(fetch_s);
    }
    return std::max<sim::SimTime>(t, 1);
  };
  const auto task_energy = [&](const ReadyTask& task,
                               const Executor& exec) -> sim::Joules {
    const double seconds = sim::to_seconds(task_time(task, exec));
    const auto& device = *exec.device;
    double active_share = 1.0;
    if (exec.is_cpu_slot) {
      active_share = 1.0 / static_cast<double>(
                               cluster.machines[exec.machine].cpu_slots);
    }
    return (device.active_power - device.idle_power) * active_share * seconds;
  };

  Policy::View view;
  view.cluster = &cluster;
  view.running_per_job = &running_per_job;
  view.running_cpu_per_job = &running_cpu_per_job;
  view.running_accel_per_job = &running_accel_per_job;
  view.total_cpu_slots = cpu_slots;
  view.total_accel_slots = accel_slots;
  view.eta = [&](const ReadyTask& t, const Executor& e) {
    return task_time(t, e);
  };
  view.energy = [&](const ReadyTask& t, const Executor& e) {
    return task_energy(t, e);
  };

  // Forward declarations of the mutually recursive steps.
  std::function<void()> dispatch;
  std::function<void(std::size_t)> release_ready_stages;
  std::function<void(std::size_t, std::size_t, std::size_t)> on_task_done;

  release_ready_stages = [&](std::size_t j) {
    auto& js = state[j];
    std::vector<bool> done(js.stages.size());
    for (std::size_t s = 0; s < js.stages.size(); ++s) {
      done[s] = js.stages[s].done;
    }
    for (const std::size_t s : js.graph.runnable(done)) {
      if (js.stages[s].released) continue;
      js.stages[s].released = true;
      const auto& spec = js.graph.stage(s);
      for (std::size_t i = 0; i < spec.task_count; ++i) {
        ready.push_back(ReadyTask{
            j, s, i, &js.graph.stage(s),
            place_input(j, s, i, cluster.machine_count()), sim.now()});
      }
    }
  };

  on_task_done = [&](std::size_t j, std::size_t s, std::size_t exec_id) {
    auto& js = state[j];
    executors[exec_id].busy = false;
    --running_per_job[j];
    if (executors[exec_id].is_cpu_slot) {
      --running_cpu_per_job[j];
    } else {
      --running_accel_per_job[j];
    }
    ++result.tasks_run;
    auto& stage = js.stages[s];
    if (--stage.remaining == 0) {
      stage.done = true;
      ++js.stages_done;
      if (js.stages_done == js.stages.size()) {
        js.finished = true;
        result.jobs[j].completion = sim.now();
      } else {
        // Downstream stages become ready after the shuffle data lands.
        const auto& spec = js.graph.stage(s);
        const double shuffle_bytes =
            static_cast<double>(spec.shuffle_bytes_per_task) *
            static_cast<double>(spec.task_count);
        const double cluster_bw =
            cluster.network_gbs * 1e9 *
            static_cast<double>(cluster.machine_count());
        const sim::SimTime delay =
            sim::from_seconds(shuffle_bytes / cluster_bw);
        sim.schedule_in(std::max<sim::SimTime>(delay, 1), [&, j] {
          release_ready_stages(j);
          dispatch();
        });
        return;  // dispatch happens after release
      }
    }
    dispatch();
  };

  dispatch = [&] {
    for (;;) {
      if (ready.empty()) return;
      std::vector<const Executor*> idle;
      for (const auto& e : executors) {
        if (!e.busy) idle.push_back(&e);
      }
      if (idle.empty()) return;
      view.now = sim.now();
      const auto choice = policy.choose(ready, idle, view);
      if (!choice) return;
      const auto [task_idx, exec_idx] = *choice;
      if (task_idx >= ready.size() || exec_idx >= idle.size())
        throw std::logic_error{"Policy returned out-of-range choice"};
      const ReadyTask task = ready[task_idx];
      auto& exec = executors[idle[exec_idx]->id];

      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(task_idx));
      exec.busy = true;
      ++running_per_job[task.job];
      if (exec.is_cpu_slot) {
        ++running_cpu_per_job[task.job];
      } else {
        ++running_accel_per_job[task.job];
      }

      const sim::SimTime t = task_time(task, exec);
      const sim::Joules e = task_energy(task, exec);
      result.energy += e;
      (exec.is_cpu_slot ? cpu_busy_s : accel_busy_s) += sim::to_seconds(t);
      if (params.charge_remote_fetch &&
          task.locality_machine != exec.machine) {
        ++result.remote_tasks;
      }
      const std::size_t exec_id = exec.id;
      sim.schedule_in(t, [&, task, exec_id] {
        on_task_done(task.job, task.stage, exec_id);
      });
    }
  };

  for (std::size_t j = 0; j < state.size(); ++j) {
    sim.schedule_at(state[j].arrival, [&, j] {
      release_ready_stages(j);
      dispatch();
    });
  }
  sim.run();

  for (const auto& js : state) {
    if (!js.finished)
      throw std::logic_error{"run_jobs: job did not finish (deadlock?)"};
  }

  result.makespan = 0;
  for (const auto& stats : result.jobs) {
    result.makespan = std::max(result.makespan, stats.completion);
  }
  const double horizon = sim::to_seconds(result.makespan);
  if (horizon > 0.0) {
    result.cpu_utilization =
        cpu_slots == 0 ? 0.0
                       : cpu_busy_s / (static_cast<double>(cpu_slots) * horizon);
    result.accel_utilization =
        accel_slots == 0
            ? 0.0
            : accel_busy_s / (static_cast<double>(accel_slots) * horizon);
  }
  // Cluster idle power over the whole horizon.
  for (const auto& machine : cluster.machines) {
    result.energy += machine.cpu.idle_power * horizon;
    for (const auto& accel : machine.accelerators) {
      result.energy += accel.idle_power * horizon;
    }
  }
  return result;
}

double RunResult::mean_job_seconds() const {
  if (jobs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& j : jobs) total += sim::to_seconds(j.duration());
  return total / static_cast<double>(jobs.size());
}

}  // namespace rb::sched

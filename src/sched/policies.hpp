#pragma once
// Scheduling policies compared in experiment E9 (Rec 11).
//
// All policies see the same information (ready tasks, idle executors, cost
// model callbacks) and differ only in the pairing rule:
//   Fifo          — oldest job first, first idle slot (slot order = CPU
//                   slots then accelerators; heterogeneity-blind).
//   Fair          — job with fewest running tasks first (slot-level fair
//                   sharing), slot choice as Fifo.
//   Locality      — Fifo job order, but prefer a slot on the machine that
//                   holds the task's input; falls back to remote.
//   HeteroAware   — among all (task, slot) pairs, pick the one with the
//                   best speedup-adjusted completion time (HEFT-flavoured):
//                   heaviest task first, on the slot minimizing its ETA.
//   EnergyAware   — pick the pair minimizing task energy, breaking ties on
//                   ETA (trades makespan for joules).
//   Random        — seeded uniform pairing; the sanity baseline.

#include <cstdint>

#include "sched/engine.hpp"
#include "sim/random.hpp"

namespace rb::sched {

class FifoPolicy final : public Policy {
 public:
  std::string name() const override { return "fifo"; }
  std::optional<std::pair<std::size_t, std::size_t>> choose(
      const std::vector<ReadyTask>& ready,
      const std::vector<const Executor*>& idle, const View& view) override;
};

class FairPolicy final : public Policy {
 public:
  std::string name() const override { return "fair"; }
  std::optional<std::pair<std::size_t, std::size_t>> choose(
      const std::vector<ReadyTask>& ready,
      const std::vector<const Executor*>& idle, const View& view) override;
};

class LocalityPolicy final : public Policy {
 public:
  std::string name() const override { return "locality"; }
  std::optional<std::pair<std::size_t, std::size_t>> choose(
      const std::vector<ReadyTask>& ready,
      const std::vector<const Executor*>& idle, const View& view) override;
};

class HeteroAwarePolicy final : public Policy {
 public:
  std::string name() const override { return "hetero-aware"; }
  std::optional<std::pair<std::size_t, std::size_t>> choose(
      const std::vector<ReadyTask>& ready,
      const std::vector<const Executor*>& idle, const View& view) override;
};

class EnergyAwarePolicy final : public Policy {
 public:
  std::string name() const override { return "energy-aware"; }
  std::optional<std::pair<std::size_t, std::size_t>> choose(
      const std::vector<ReadyTask>& ready,
      const std::vector<const Executor*>& idle, const View& view) override;
};

/// Dominant-resource fairness (Ghodsi et al.): a job's dominant share is
/// the larger of its CPU-slot and accelerator-slot usage fractions; the
/// next task comes from the job with the smallest dominant share, placed on
/// the idle executor with the best ETA.
class DrfPolicy final : public Policy {
 public:
  std::string name() const override { return "drf"; }
  std::optional<std::pair<std::size_t, std::size_t>> choose(
      const std::vector<ReadyTask>& ready,
      const std::vector<const Executor*>& idle, const View& view) override;
};

class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_{seed} {}
  std::string name() const override { return "random"; }
  std::optional<std::pair<std::size_t, std::size_t>> choose(
      const std::vector<ReadyTask>& ready,
      const std::vector<const Executor*>& idle, const View& view) override;

 private:
  sim::Rng rng_;
};

}  // namespace rb::sched

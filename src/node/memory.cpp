#include "node/memory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rb::node {

std::string to_string(MemoryTech tech) {
  switch (tech) {
    case MemoryTech::kDram: return "dram";
    case MemoryTech::kNvm: return "nvm";
    case MemoryTech::kFlash: return "flash";
  }
  return "?";
}

MemoryTier dram_ddr4() { return {MemoryTech::kDram, 90.0, 100.0, 8.0, 0.35}; }
MemoryTier nvm_xpoint() { return {MemoryTech::kNvm, 350.0, 35.0, 2.5, 0.10}; }
MemoryTier flash_nvme() {
  return {MemoryTech::kFlash, 90'000.0, 3.0, 0.35, 0.01};
}

sim::Dollars TieredMemory::capex() const {
  sim::Dollars total = 0.0;
  for (const auto& t : tiers) total += t.capacity_gib * t.tier.dollars_per_gib;
  return total;
}

sim::Watts TieredMemory::power() const {
  sim::Watts total = 0.0;
  for (const auto& t : tiers) total += t.capacity_gib * t.tier.watts_per_gib;
  return total;
}

double TieredMemory::total_capacity_gib() const {
  double total = 0.0;
  for (const auto& t : tiers) total += t.capacity_gib;
  return total;
}

MemoryEvaluation evaluate_memory(const TieredMemory& config,
                                 double working_set_gib, double alpha) {
  if (config.tiers.empty())
    throw std::invalid_argument{"evaluate_memory: no tiers"};
  if (working_set_gib <= 0.0)
    throw std::invalid_argument{"evaluate_memory: working set must be > 0"};
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument{"evaluate_memory: alpha out of (0, 1]"};

  // Hit curve: fraction of accesses captured by the fastest C GiB is
  // H(C) = min(1, (C/W)^alpha). Tier i serves H(C_1+..+C_i) - H(C_1+..C_{i-1}).
  const auto hits_upto = [&](double capacity) {
    return std::min(1.0, std::pow(capacity / working_set_gib, alpha));
  };

  MemoryEvaluation out;
  double cumulative = 0.0;
  double served = 0.0;
  double latency = 0.0;
  for (const auto& t : config.tiers) {
    const double before = hits_upto(cumulative);
    cumulative += t.capacity_gib;
    const double after = hits_upto(cumulative);
    latency += (after - before) * t.tier.latency_ns;
    served = after;
  }
  // Overflow: misses beyond installed capacity page to NVMe-class storage
  // with a 4x software-overhead penalty, independent of what is installed.
  const double miss = 1.0 - served;
  latency += miss * flash_nvme().latency_ns * 4.0;

  out.avg_latency_ns = latency;
  out.hit_fraction_covered = served;
  out.capacity_gib = config.total_capacity_gib();
  out.capex = config.capex();
  out.power = config.power();
  return out;
}

MemoryPlan best_memory_under_budget(sim::Dollars budget,
                                    double working_set_gib, double alpha) {
  if (budget <= 0.0)
    throw std::invalid_argument{"best_memory_under_budget: budget <= 0"};

  const auto dram = dram_ddr4();
  const auto nvm = nvm_xpoint();
  const auto flash = flash_nvme();

  MemoryPlan best;
  bool first = true;
  const auto consider = [&](TieredMemory config, std::string label) {
    if (config.capex() > budget * 1.0001) return;
    const auto eval = evaluate_memory(config, working_set_gib, alpha);
    const bool better =
        first || eval.avg_latency_ns < best.evaluation.avg_latency_ns;
    if (better) {
      best = MemoryPlan{std::move(config), eval, std::move(label)};
      first = false;
    }
  };

  // DRAM only: all budget on DRAM.
  consider(TieredMemory{{{dram, budget / dram.dollars_per_gib}}},
           "dram-only");

  // DRAM + NVM and DRAM + NVM + flash: sweep the DRAM budget share.
  for (double dram_share = 0.1; dram_share <= 0.91; dram_share += 0.1) {
    const double dram_gib = budget * dram_share / dram.dollars_per_gib;
    const double rest = budget * (1.0 - dram_share);
    consider(TieredMemory{{{dram, dram_gib},
                           {nvm, rest / nvm.dollars_per_gib}}},
             "dram+nvm");
    consider(TieredMemory{{{dram, dram_gib},
                           {nvm, rest * 0.7 / nvm.dollars_per_gib},
                           {flash, rest * 0.3 / flash.dollars_per_gib}}},
             "dram+nvm+flash");
  }
  return best;
}

}  // namespace rb::node

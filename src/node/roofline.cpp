#include "node/roofline.hpp"

#include <algorithm>
#include <stdexcept>

namespace rb::node {

double attainable_gflops(const DeviceModel& device, double ai) noexcept {
  return std::min(device.peak_gflops, ai * device.mem_bw_gbs);
}

sim::SimTime device_time(const DeviceModel& device,
                         const KernelProfile& kernel) {
  if (kernel.flops < 0.0 || kernel.bytes < 0.0)
    throw std::invalid_argument{"device_time: negative kernel profile"};
  if (device.peak_gflops <= 0.0 || device.mem_bw_gbs <= 0.0)
    throw std::invalid_argument{"device_time: device has no capability"};
  if (kernel.parallel_fraction < 0.0 || kernel.parallel_fraction > 1.0)
    throw std::invalid_argument{"device_time: parallel_fraction out of range"};
  if (kernel.flops == 0.0 && kernel.bytes == 0.0) return 0;

  // Memory-only kernels (flops == 0): bound by bandwidth directly.
  if (kernel.flops == 0.0) {
    return sim::from_seconds(kernel.bytes / (device.mem_bw_gbs * 1e9));
  }
  const double gflops = attainable_gflops(device, kernel.arithmetic_intensity());
  const double par_flops = kernel.flops * kernel.parallel_fraction;
  const double ser_flops = kernel.flops - par_flops;
  // Parallel portion at the roofline rate; serial tail at 10% of peak
  // (single lane / single core of the device).
  const double par_seconds = par_flops / (gflops * 1e9);
  const double ser_seconds = ser_flops / (device.peak_gflops * 0.1 * 1e9);
  return sim::from_seconds(par_seconds + ser_seconds);
}

sim::SimTime offload_time(const DeviceModel& device,
                          const KernelProfile& kernel) {
  const sim::SimTime compute = device_time(device, kernel);
  if (device.pcie_gbs <= 0.0) return compute;  // host device, no transfer
  const double transfer_seconds =
      kernel.transfer_bytes() / (device.pcie_gbs * 1e9);
  return device.offload_latency + sim::from_seconds(transfer_seconds) +
         compute;
}

double speedup_vs(const DeviceModel& accel, const DeviceModel& host,
                  const KernelProfile& kernel) {
  const auto host_t = offload_time(host, kernel);
  const auto accel_t = offload_time(accel, kernel);
  if (accel_t <= 0) return 1.0;
  return static_cast<double>(host_t) / static_cast<double>(accel_t);
}

}  // namespace rb::node

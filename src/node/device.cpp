#include "node/device.hpp"

#include <stdexcept>

namespace rb::node {

std::string to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu: return "cpu";
    case DeviceKind::kGpu: return "gpu";
    case DeviceKind::kFpga: return "fpga";
    case DeviceKind::kAsic: return "asic";
    case DeviceKind::kNeuromorphic: return "neuromorphic";
  }
  return "?";
}

std::vector<DeviceModel> standard_catalog() {
  std::vector<DeviceModel> devices;

  DeviceModel cpu;
  cpu.name = "xeon-2s";  // dual-socket Xeon-class server CPU
  cpu.kind = DeviceKind::kCpu;
  cpu.peak_gflops = 1000.0;
  cpu.mem_bw_gbs = 120.0;
  cpu.idle_power = 90.0;
  cpu.active_power = 300.0;
  cpu.unit_price = 4500.0;
  cpu.pcie_gbs = 0.0;  // host
  cpu.offload_latency = 0;
  cpu.porting_person_months = 0.0;  // software already targets it
  cpu.service_cv = 0.35;            // caches, interference, JIT
  devices.push_back(cpu);

  DeviceModel gpu;
  gpu.name = "gpgpu-hbm";  // Pascal-class datacenter GPU
  gpu.kind = DeviceKind::kGpu;
  gpu.peak_gflops = 9000.0;
  gpu.mem_bw_gbs = 700.0;
  gpu.idle_power = 30.0;
  gpu.active_power = 300.0;
  gpu.unit_price = 7000.0;
  gpu.pcie_gbs = 12.0;  // PCIe gen3 x16 effective
  gpu.offload_latency = 10 * sim::kMicrosecond;
  gpu.porting_person_months = 4.0;
  gpu.service_cv = 0.15;
  devices.push_back(gpu);

  DeviceModel fpga;
  fpga.name = "fpga-dc";  // Catapult-class datacenter FPGA board
  fpga.kind = DeviceKind::kFpga;
  fpga.peak_gflops = 1500.0;
  fpga.mem_bw_gbs = 35.0;   // DDR-attached board
  fpga.idle_power = 15.0;
  fpga.active_power = 60.0;
  fpga.unit_price = 3500.0;
  fpga.pcie_gbs = 12.0;
  fpga.offload_latency = 5 * sim::kMicrosecond;
  fpga.porting_person_months = 12.0;  // HDL / HLS effort (Sec IV.C.3)
  fpga.service_cv = 0.02;             // fixed-latency pipeline
  devices.push_back(fpga);

  DeviceModel asic;
  asic.name = "asic-inference";  // TPU-like fixed-function accelerator
  asic.kind = DeviceKind::kAsic;
  asic.peak_gflops = 45000.0;
  asic.mem_bw_gbs = 300.0;
  asic.idle_power = 20.0;
  asic.active_power = 75.0;
  asic.unit_price = 2500.0;
  asic.pcie_gbs = 12.0;
  asic.offload_latency = 8 * sim::kMicrosecond;
  asic.porting_person_months = 24.0;  // toolchain + model conversion
  asic.service_cv = 0.02;
  devices.push_back(asic);

  DeviceModel neuro;
  neuro.name = "neuromorphic-spiking";
  neuro.kind = DeviceKind::kNeuromorphic;
  neuro.peak_gflops = 200.0;  // effective synaptic-op equivalent
  neuro.mem_bw_gbs = 20.0;
  neuro.idle_power = 0.5;
  neuro.active_power = 2.0;  // headline energy efficiency
  neuro.unit_price = 15000.0;  // no market ecosystem yet (Rec 7)
  neuro.pcie_gbs = 4.0;
  neuro.offload_latency = 50 * sim::kMicrosecond;
  neuro.porting_person_months = 36.0;
  neuro.service_cv = 0.05;
  devices.push_back(neuro);

  return devices;
}

DeviceModel find_device(DeviceKind kind) {
  for (auto& d : standard_catalog()) {
    if (d.kind == kind) return d;
  }
  throw std::runtime_error{"find_device: kind not in catalogue"};
}

}  // namespace rb::node

#pragma once
// Roofline execution model (Williams et al.) for heterogeneous devices.
//
// A kernel is characterized by its total floating-point (or equivalent)
// operations and the bytes it moves through memory; attainable throughput on
// a device is min(peak compute, arithmetic-intensity x memory bandwidth).
// This first-order model is what the roadmap's claims about accelerator
// speedups (Rec 4: "a factor of ten or more") reduce to.

#include "node/device.hpp"
#include "sim/units.hpp"

namespace rb::node {

/// Work description for the roofline model.
struct KernelProfile {
  double flops = 0.0;   // total operations
  double bytes = 0.0;   // total DRAM traffic
  /// Fraction of the kernel that is parallelizable / offloadable; the rest
  /// runs at 1/10 of device peak (Amdahl-style serial tail).
  double parallel_fraction = 1.0;
  /// Bytes crossing PCIe per invocation. Defaults (-1) to `bytes`; iterative
  /// or data-resident kernels (k-means epochs, DNN weights) ship far less
  /// over the bus than they move through device DRAM.
  double pcie_bytes = -1.0;

  double arithmetic_intensity() const noexcept {
    return bytes <= 0.0 ? 1e18 : flops / bytes;
  }
  double transfer_bytes() const noexcept {
    return pcie_bytes < 0.0 ? bytes : pcie_bytes;
  }
};

/// Attainable throughput of `device` at arithmetic intensity `ai` (GFLOP/s).
double attainable_gflops(const DeviceModel& device, double ai) noexcept;

/// Pure device execution time of `kernel` (no transfers); >= 0.
/// Throws std::invalid_argument on negative flops/bytes or zero device peak.
sim::SimTime device_time(const DeviceModel& device, const KernelProfile& kernel);

/// End-to-end offloaded execution: launch latency + PCIe transfer of
/// `kernel.bytes` (both directions folded into one pass) + device time.
/// For host devices (pcie_gbs == 0) this equals device_time.
sim::SimTime offload_time(const DeviceModel& device,
                          const KernelProfile& kernel);

/// Speedup of running `kernel` on `accel` (including transfer) vs `host`.
double speedup_vs(const DeviceModel& accel, const DeviceModel& host,
                  const KernelProfile& kernel);

}  // namespace rb::node

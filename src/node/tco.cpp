#include "node/tco.hpp"

#include <algorithm>
#include <stdexcept>

namespace rb::node {

RoiResult accelerator_roi(const RoiParams& params) {
  if (params.speedup <= 0.0)
    throw std::invalid_argument{"accelerator_roi: speedup must be positive"};
  if (params.utilization < 0.0 || params.utilization > 1.0)
    throw std::invalid_argument{"accelerator_roi: utilization out of [0, 1]"};
  if (params.horizon <= 0.0)
    throw std::invalid_argument{"accelerator_roi: horizon must be positive"};

  RoiResult out;
  out.investment = params.accelerator.unit_price +
                   params.accelerator.porting_person_months *
                       params.person_month_cost;

  // Extra work served: offloadable work finishes speedup x faster, so the
  // server serves (speedup - 1) x utilization more offloadable work units.
  const double extra_work = params.work_units_per_year * params.horizon *
                            params.utilization * (params.speedup - 1.0);
  const sim::Dollars work_value = extra_work * params.value_per_work_unit;

  // Energy: the accelerator draws idle power always and active power while
  // used; while it runs, the host idles instead of computing.
  const double hours = params.horizon * sim::kHoursPerYear;
  const double active_h = hours * params.utilization / params.speedup;
  const double idle_h = hours - active_h;
  const double accel_kwh =
      (params.accelerator.active_power * active_h +
       params.accelerator.idle_power * idle_h) /
      1000.0;
  // Baseline: the host would have computed that work itself for
  // utilization x hours at active power.
  const double host_active_h = hours * params.utilization;
  const double host_saved_kwh =
      (params.host.active_power - params.host.idle_power) *
      (host_active_h - active_h) / 1000.0;
  out.energy_delta = (accel_kwh - host_saved_kwh) * params.dollars_per_kwh;

  out.gross_benefit = work_value - out.energy_delta;
  out.roi = out.investment <= 0.0
                ? 0.0
                : (out.gross_benefit - out.investment) / out.investment;
  return out;
}

double breakeven_utilization(RoiParams params) {
  double lo = 0.0, hi = 1.0;
  params.utilization = hi;
  if (!accelerator_roi(params).worthwhile()) return 1.0 + 1e-9;
  params.utilization = lo;
  if (accelerator_roi(params).worthwhile()) return 0.0;
  for (int i = 0; i < 50; ++i) {
    const double mid = 0.5 * (lo + hi);
    params.utilization = mid;
    (accelerator_roi(params).worthwhile() ? hi : lo) = mid;
  }
  return hi;
}

sim::Dollars vendor_switch_nre(const DeviceModel& from, const DeviceModel& to,
                               double ecosystem_distance,
                               sim::Dollars person_month_cost) {
  if (ecosystem_distance < 0.0 || ecosystem_distance > 1.0)
    throw std::invalid_argument{"vendor_switch_nre: distance out of [0, 1]"};
  // Re-porting costs the destination's porting effort scaled by how far the
  // ecosystems are apart, floored at 25% even for "compatible" stacks.
  const double months = to.porting_person_months *
                        std::max(0.25, ecosystem_distance) *
                        (from.kind == to.kind ? 0.6 : 1.0);
  return months * person_month_cost;
}

}  // namespace rb::node

#pragma once
// Memory-hierarchy / NVM tiering model (Rec 5: hardware must integrate
// "new non-volatile memories and I/O interfaces" to "meet the evolving
// needs of Big Data").
//
// A node's memory is a stack of tiers (DRAM, 3D-XPoint-class NVM, NVMe
// flash). Accesses over a working set follow a concave hit curve
// H(C) = (C/W)^alpha with locality exponent alpha in (0, 1] — the standard
// first-order form of a skewed (Zipf-like) reuse distribution: small
// fractions of capacity capture large fractions of accesses. The model
// yields average access latency, effective bandwidth, capex and power for a
// configuration, and a budget optimizer that answers Rec 5's question: for
// a fixed memory budget, does adding NVM under the DRAM beat buying DRAM
// only?

#include <string>
#include <vector>

#include "sim/units.hpp"

namespace rb::node {

enum class MemoryTech : std::uint8_t { kDram, kNvm, kFlash };

std::string to_string(MemoryTech tech);

struct MemoryTier {
  MemoryTech tech = MemoryTech::kDram;
  double latency_ns = 90.0;        // loaded access latency
  double bandwidth_gbs = 100.0;    // per-channel-population sustained
  sim::Dollars dollars_per_gib = 8.0;
  sim::Watts watts_per_gib = 0.35;
};

/// 2016-era tier parameters.
MemoryTier dram_ddr4();
MemoryTier nvm_xpoint();
MemoryTier flash_nvme();

/// One configured tier: a technology and its installed capacity.
struct TierConfig {
  MemoryTier tier;
  double capacity_gib = 0.0;
};

struct TieredMemory {
  std::vector<TierConfig> tiers;  // ordered fastest-first

  sim::Dollars capex() const;
  sim::Watts power() const;
  double total_capacity_gib() const;
};

struct MemoryEvaluation {
  double avg_latency_ns = 0.0;
  double hit_fraction_covered = 0.0;  // accesses served by installed tiers
  double capacity_gib = 0.0;
  sim::Dollars capex = 0.0;
  sim::Watts power = 0.0;
};

/// Evaluate average access latency over a working set of `working_set_gib`
/// with locality exponent `alpha` (0 < alpha <= 1; smaller = more skew).
/// Accesses missing every installed tier page to NVMe-class storage at 4x
/// its device latency (page-fault overflow penalty). Throws on empty config
/// or non-positive working set.
MemoryEvaluation evaluate_memory(const TieredMemory& config,
                                 double working_set_gib, double alpha);

/// Best of {DRAM-only, DRAM+NVM, DRAM+NVM+flash} under a capex budget for
/// the given working set: grid-searches the DRAM fraction and returns the
/// configuration with the lowest average latency that covers the working
/// set (or the best coverage if none can).
struct MemoryPlan {
  TieredMemory config;
  MemoryEvaluation evaluation;
  std::string label;
};
MemoryPlan best_memory_under_budget(sim::Dollars budget,
                                    double working_set_gib,
                                    double alpha = 0.5);

}  // namespace rb::node

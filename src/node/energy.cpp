#include "node/energy.hpp"

#include <stdexcept>

namespace rb::node {

sim::Watts power_at(const DeviceModel& device, double utilization) {
  if (utilization < 0.0 || utilization > 1.0)
    throw std::invalid_argument{"power_at: utilization out of [0, 1]"};
  return device.idle_power +
         utilization * (device.active_power - device.idle_power);
}

sim::Joules kernel_energy(const DeviceModel& device,
                          const KernelProfile& kernel) {
  const double seconds = sim::to_seconds(offload_time(device, kernel));
  return power_at(device, 1.0) * seconds;
}

sim::Joules node_energy(std::span<const DeviceModel> node_devices,
                        const DeviceModel& active,
                        const KernelProfile& kernel) {
  const double seconds = sim::to_seconds(offload_time(active, kernel));
  sim::Joules total = power_at(active, 1.0) * seconds;
  for (const auto& d : node_devices) {
    if (d.name == active.name) continue;
    total += power_at(d, 0.0) * seconds;
  }
  return total;
}

double gflops_per_joule(const DeviceModel& device,
                        const KernelProfile& kernel) {
  const sim::Joules joules = kernel_energy(device, kernel);
  if (joules <= 0.0) return 0.0;
  return kernel.flops / 1e9 / joules;
}

}  // namespace rb::node

#include "node/integration.hpp"

#include <cmath>
#include <stdexcept>

namespace rb::node {

ProcessNode leading_edge_16nm() {
  return ProcessNode{"16nm", 0.20, 2.0, 7000.0, 15e6};
}
ProcessNode mature_28nm() {
  return ProcessNode{"28nm", 0.09, 2.0, 3000.0, 4e6};
}
ProcessNode legacy_65nm() {
  return ProcessNode{"65nm", 0.03, 2.0, 1200.0, 1e6};
}

double dies_per_wafer(double area_mm2) {
  if (area_mm2 <= 0.0)
    throw std::invalid_argument{"dies_per_wafer: area must be positive"};
  // Standard estimate with 300 mm wafer: pi*r^2/A - pi*d/sqrt(2A) edge loss.
  constexpr double kDiameter = 300.0;
  const double r = kDiameter / 2.0;
  const double gross = M_PI * r * r / area_mm2 -
                       M_PI * kDiameter / std::sqrt(2.0 * area_mm2);
  return std::max(0.0, gross);
}

double die_yield(double area_mm2, const ProcessNode& process) {
  if (area_mm2 <= 0.0)
    throw std::invalid_argument{"die_yield: area must be positive"};
  const double area_cm2 = area_mm2 / 100.0;
  return std::pow(1.0 + process.defect_density * area_cm2 /
                            process.cluster_alpha,
                  -process.cluster_alpha);
}

sim::Dollars good_die_cost(double area_mm2, const ProcessNode& process) {
  const double gross = dies_per_wafer(area_mm2);
  if (gross < 1.0)
    throw std::invalid_argument{"good_die_cost: die larger than wafer"};
  const double good = gross * die_yield(area_mm2, process);
  return process.wafer_cost / good;
}

UnitCostBreakdown soc_unit_cost(double area_mm2, const ProcessNode& process,
                                double volume) {
  if (volume < 1.0)
    throw std::invalid_argument{"soc_unit_cost: volume must be >= 1"};
  UnitCostBreakdown out;
  out.silicon = good_die_cost(area_mm2, process);
  out.packaging = 8.0;  // single-die flip-chip package
  out.nre_amortized = process.mask_set_nre / volume;
  return out;
}

UnitCostBreakdown sip_unit_cost(const std::vector<ChipletSpec>& chiplets,
                                double volume, const PackagingParams& params) {
  if (chiplets.empty())
    throw std::invalid_argument{"sip_unit_cost: no chiplets"};
  if (volume < 1.0)
    throw std::invalid_argument{"sip_unit_cost: volume must be >= 1"};

  UnitCostBreakdown out;
  double assembly_yield = 1.0;
  for (const auto& c : chiplets) {
    out.silicon += good_die_cost(c.die.area_mm2, c.die.process) +
                   params.kgd_test_cost;
    const double amortize_over = std::max(volume, c.reused_volume);
    out.nre_amortized += c.die.process.mask_set_nre / amortize_over;
    assembly_yield *= params.assembly_yield_per_chiplet;
  }
  out.packaging = params.base_package_cost +
                  params.per_chiplet_cost *
                      static_cast<double>(chiplets.size());
  // Assembly scrap inflates everything that went into the package.
  const double scrap = 1.0 / assembly_yield;
  out.silicon *= scrap;
  out.packaging *= scrap;
  return out;
}

double soc_sip_crossover_volume(double soc_area_mm2,
                                const ProcessNode& soc_process,
                                const std::vector<ChipletSpec>& chiplets,
                                const PackagingParams& params) {
  const auto soc_cheaper = [&](double volume) {
    return soc_unit_cost(soc_area_mm2, soc_process, volume).total() <
           sip_unit_cost(chiplets, volume, params).total();
  };
  double lo = 1.0, hi = 1e9;
  if (soc_cheaper(lo)) return lo;
  if (!soc_cheaper(hi)) return hi;
  for (int i = 0; i < 60; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    (soc_cheaper(mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace rb::node

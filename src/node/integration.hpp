#pragma once
// SoC vs System-in-Package (SiP/chiplet) silicon cost model (Sec IV.B.3).
//
// The roadmap's argument: a monolithic market-specific SoC must be built
// entirely on an expensive leading-edge process, its yield falls with die
// area, its NRE (mask set, design) is huge, and any interface change forces
// a redesign. A SiP assembles a leading-edge compute chiplet with I/O and
// accelerator chiplets on older, cheaper processes (EUROSERVER pioneered
// this), trading off package/assembly cost and known-good-die testing.
//
// Die yield uses the negative-binomial model
//     Y = (1 + D0 * A / alpha)^(-alpha)
// with defect density D0 (defects/cm^2) and clustering parameter alpha.

#include <string>
#include <vector>

#include "sim/units.hpp"

namespace rb::node {

/// Silicon process node with manufacturing-cost parameters.
struct ProcessNode {
  std::string name;           // e.g. "16nm"
  double defect_density = 0.1;  // defects per cm^2 (D0)
  double cluster_alpha = 2.0;   // negative-binomial clustering
  sim::Dollars wafer_cost = 6000.0;  // processed 300 mm wafer
  sim::Dollars mask_set_nre = 5e6;   // full mask set + design NRE share
};

/// Representative process nodes circa 2016.
ProcessNode leading_edge_16nm();
ProcessNode mature_28nm();
ProcessNode legacy_65nm();

/// Dies per 300 mm wafer for a square die of `area_mm2` (with edge loss).
double dies_per_wafer(double area_mm2);

/// Negative-binomial die yield for `area_mm2` on `process` in [0, 1].
double die_yield(double area_mm2, const ProcessNode& process);

/// Manufacturing cost of one *good* die (wafer cost / good dies).
sim::Dollars good_die_cost(double area_mm2, const ProcessNode& process);

/// One chiplet (or the single SoC die).
struct DieSpec {
  std::string name;
  double area_mm2 = 100.0;
  ProcessNode process;
};

struct PackagingParams {
  // Substrate/interposer cost per package (scales with chiplet count).
  sim::Dollars base_package_cost = 5.0;
  sim::Dollars per_chiplet_cost = 4.0;
  // Known-good-die test cost per chiplet.
  sim::Dollars kgd_test_cost = 2.0;
  // Assembly yield per chiplet placement.
  double assembly_yield_per_chiplet = 0.995;
};

struct UnitCostBreakdown {
  sim::Dollars silicon = 0.0;
  sim::Dollars packaging = 0.0;
  sim::Dollars nre_amortized = 0.0;
  sim::Dollars total() const noexcept {
    return silicon + packaging + nre_amortized;
  }
};

/// Unit cost of a monolithic SoC of `area_mm2` on `process` at `volume`
/// units, with the full mask-set NRE amortized over the volume.
UnitCostBreakdown soc_unit_cost(double area_mm2, const ProcessNode& process,
                                double volume);

/// Unit cost of a SiP composed of `chiplets` at `volume` units. Chiplets
/// whose `reused_volume` exceeds `volume` amortize their NRE over the larger
/// figure (commodity chiplets reused across products — the roadmap's
/// "market-specific products from commodity compute chiplets").
struct ChipletSpec {
  DieSpec die;
  double reused_volume = 0.0;  // 0 => amortize over product volume only
};
UnitCostBreakdown sip_unit_cost(const std::vector<ChipletSpec>& chiplets,
                                double volume,
                                const PackagingParams& params = {});

/// Volume at which the SoC's unit cost drops below the SiP's (binary search
/// over [1, 1e9]); returns 1e9 if the SoC never wins on the range (common for
/// big dies), or 1 if it always wins.
double soc_sip_crossover_volume(double soc_area_mm2,
                                const ProcessNode& soc_process,
                                const std::vector<ChipletSpec>& chiplets,
                                const PackagingParams& params = {});

}  // namespace rb::node

#pragma once
// Accelerator ROI / TCO model (Sec IV.B.2 and Key Finding 2).
//
// The roadmap's central economic finding: "European companies are not
// convinced of the Return on Investment of using novel hardware" — the
// investment is accelerator capex + re-engineering effort, and the return
// is served work per dollar, which collapses at low utilization. This model
// computes ROI and break-even utilization so that claim has a number.

#include "node/device.hpp"

namespace rb::node {

struct RoiParams {
  DeviceModel host;            // baseline server CPU
  DeviceModel accelerator;     // candidate device
  double speedup = 10.0;       // kernel speedup on the accelerator
  double utilization = 0.3;    // fraction of time there is offloadable work
  sim::Years horizon = 3.0;
  double dollars_per_kwh = 0.12;
  sim::Dollars person_month_cost = 12'000.0;  // engineering re-work cost
  // Work served by one baseline server per year at 100% utilization,
  // in arbitrary "work units"; value of one unit of work in dollars.
  double work_units_per_year = 1000.0;
  sim::Dollars value_per_work_unit = 50.0;
};

struct RoiResult {
  sim::Dollars investment = 0.0;       // accel capex + porting cost
  sim::Dollars gross_benefit = 0.0;    // extra work value + energy savings
  sim::Dollars energy_delta = 0.0;     // accel energy cost - baseline (>0 bad)
  double roi = 0.0;                    // (benefit - investment) / investment
  bool worthwhile() const noexcept { return roi > 0.0; }
};

/// ROI of adding `accelerator` to a host server under `params`.
RoiResult accelerator_roi(const RoiParams& params);

/// Smallest utilization in [0, 1] at which ROI crosses zero; returns 1.0+eps
/// (i.e. > 1, "never") if even full utilization does not pay back.
double breakeven_utilization(RoiParams params);

/// Non-recurring engineering cost of switching accelerator vendors
/// (Sec IV.B.2: "considerable NRE cost required for a change in GPU
/// vendor"): re-porting effort scaled by ecosystem distance in [0, 1].
sim::Dollars vendor_switch_nre(const DeviceModel& from, const DeviceModel& to,
                               double ecosystem_distance,
                               sim::Dollars person_month_cost = 12'000.0);

}  // namespace rb::node

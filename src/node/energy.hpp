#pragma once
// Energy accounting for device execution.
//
// Power is modelled as idle + utilization x (active - idle). Energy for a
// kernel is execution time at full utilization plus the idle draw of every
// other device in the node for the same wall-clock span — which is exactly
// the effect behind the roadmap's finding that GPGPU "power consumption is
// too high and utilization too low to justify the investment" (Sec IV.B.2).

#include <span>

#include "node/device.hpp"
#include "node/roofline.hpp"

namespace rb::node {

/// Instantaneous power of a device at a given utilization in [0, 1].
sim::Watts power_at(const DeviceModel& device, double utilization);

/// Energy (J) to run `kernel` on `device`, device fully busy.
sim::Joules kernel_energy(const DeviceModel& device,
                          const KernelProfile& kernel);

/// Node-level energy for offloading `kernel` to `active` while every device
/// in `node_devices` idles (the active one contributes active power).
sim::Joules node_energy(std::span<const DeviceModel> node_devices,
                        const DeviceModel& active,
                        const KernelProfile& kernel);

/// Energy efficiency in GFLOP/J for the kernel on the device.
double gflops_per_joule(const DeviceModel& device, const KernelProfile& kernel);

}  // namespace rb::node

#pragma once
// Compute-device catalogue for heterogeneous node modelling (Sec IV.B.1-2).
//
// The roadmap discusses "combinations of multiple kinds of processors and
// accelerators, GPUs, many-cores, FPGAs, and application-specific
// accelerators into the same device", plus neuromorphic hardware
// (Recommendation 7). Each device is described by first-order parameters
// sufficient for roofline performance, energy, and ROI models. Numbers are
// representative of the 2016/2017 technology the paper describes.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace rb::node {

enum class DeviceKind : std::uint8_t {
  kCpu,
  kGpu,
  kFpga,
  kAsic,
  kNeuromorphic,
};

std::string to_string(DeviceKind kind);

struct DeviceModel {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;
  double peak_gflops = 0.0;       // peak compute (or op/s equivalent), 1e9/s
  double mem_bw_gbs = 0.0;        // sustained memory bandwidth, GB/s
  sim::Watts idle_power = 0.0;
  sim::Watts active_power = 0.0;  // at full utilization (TDP-like)
  sim::Dollars unit_price = 0.0;
  // PCIe-attached devices pay a host<->device transfer cost.
  double pcie_gbs = 0.0;          // 0 => device is the host itself
  sim::SimTime offload_latency = 0;  // fixed per-offload launch cost
  // Person-months to port a typical analytics kernel (Sec IV.B.1: "the
  // effort ... requires specialized skills"). Drives ROI models.
  double porting_person_months = 0.0;
  // Service-time variability when running a fixed kernel (coefficient of
  // variation). FPGAs/ASICs are near-deterministic, which is what produces
  // the tail-latency win in E1.
  double service_cv = 0.1;
};

/// Representative 2016/2017-era device catalogue.
/// Index by kind via find_device(); names are stable identifiers.
std::vector<DeviceModel> standard_catalog();

/// First catalogue device of `kind`; throws std::runtime_error if absent.
DeviceModel find_device(DeviceKind kind);

}  // namespace rb::node

#pragma once
// Shortest-path routing with ECMP (equal-cost multi-path) selection.
//
// Routes are computed on hop count (all fabric links are "equal cost", as in
// a standard L3 Clos). For each destination we precompute the BFS distance
// field; next hops toward a destination are all neighbors one hop closer.
// Flows pick among equal-cost next hops with a deterministic hash of the
// flow id — the flow-level analogue of 5-tuple ECMP hashing.

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace rb::net {

class Router {
 public:
  explicit Router(const Topology& topo);

  /// Hop distance from `from` to `to`; throws std::runtime_error if
  /// unreachable.
  int distance(NodeId from, NodeId to) const;

  /// The links on the ECMP path chosen for `flow_hash` from `src` to `dst`,
  /// in order. Empty when src == dst.
  std::vector<LinkId> path(NodeId src, NodeId dst,
                           std::uint64_t flow_hash) const;

  /// All equal-cost (neighbor, link) next hops from `at` toward `dst`.
  std::vector<std::pair<NodeId, LinkId>> next_hops(NodeId at, NodeId dst) const;

 private:
  void ensure_dist(NodeId dst) const;

  const Topology* topo_;
  // dist_[dst][node] = hops from node to dst; computed lazily per dst.
  mutable std::vector<std::vector<int>> dist_;
  mutable std::vector<bool> computed_;
};

/// Stateless 64-bit mix (splitmix64 finalizer) used for ECMP hashing.
std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace rb::net

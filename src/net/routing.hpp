#pragma once
// Shortest-path routing with ECMP (equal-cost multi-path) selection.
//
// Routes are computed on hop count (all fabric links are "equal cost", as in
// a standard L3 Clos). For each destination we precompute the BFS distance
// field; next hops toward a destination are all neighbors one hop closer.
// Flows pick among equal-cost next hops with a deterministic hash of the
// flow id — the flow-level analogue of 5-tuple ECMP hashing.
//
// The router is failure-aware: dead links and dead nodes (see
// Topology::set_link_up / set_node_up) are excluded from the BFS, and all
// cached distance fields are invalidated whenever the topology's state epoch
// changes — the flow-level analogue of routing-protocol reconvergence.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/topology.hpp"

namespace rb::net {

/// Thrown when no path exists between two endpoints — either because the
/// topology is partitioned by construction or because failures disconnected
/// it. Derives from std::runtime_error so legacy catch sites keep working.
class NoRouteError : public std::runtime_error {
 public:
  explicit NoRouteError(const std::string& what) : std::runtime_error{what} {}
};

class Router {
 public:
  explicit Router(const Topology& topo);

  /// Hop distance from `from` to `to`; throws NoRouteError if unreachable.
  int distance(NodeId from, NodeId to) const;

  /// True if a live path exists from `from` to `to` (never throws).
  bool reachable(NodeId from, NodeId to) const;

  /// The links on the ECMP path chosen for `flow_hash` from `src` to `dst`,
  /// in order. Empty when src == dst. Throws NoRouteError if disconnected.
  std::vector<LinkId> path(NodeId src, NodeId dst,
                           std::uint64_t flow_hash) const;

  /// All equal-cost (neighbor, link) next hops from `at` toward `dst`.
  std::vector<std::pair<NodeId, LinkId>> next_hops(NodeId at, NodeId dst) const;

 private:
  void ensure_dist(NodeId dst) const;

  const Topology* topo_;
  // dist_[dst][node] = hops from node to dst; computed lazily per dst and
  // discarded wholesale when the topology's fault state changes.
  mutable std::vector<std::vector<int>> dist_;
  mutable std::vector<bool> computed_;
  mutable std::uint64_t epoch_ = 0;
};

/// Stateless 64-bit mix (splitmix64 finalizer) used for ECMP hashing.
std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace rb::net

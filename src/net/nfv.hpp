#pragma once
// Network Function Virtualization service-chain model (Sec IV.A.2).
//
// The roadmap: NFV implements security, firewalls, routing schemes "and
// other functions separately, again via software allowing for increased
// control, flexibility and scalability". The trade-off is per-packet CPU
// cost on commodity servers versus fixed-function appliance throughput at
// much higher capex. We model a chain of functions as sequential per-packet
// work on a pool of cores, with M/M/1-style queueing latency per stage.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace rb::net {

enum class FunctionKind : std::uint8_t {
  kFirewall,
  kNat,
  kLoadBalancer,
  kDeepPacketInspection,
  kVpnEncrypt,
};

std::string to_string(FunctionKind kind);

/// Per-packet CPU cost of a software implementation, in nanoseconds/packet
/// on one core (DPDK-class numbers).
double software_cost_ns(FunctionKind kind) noexcept;

/// Fixed-function appliance throughput (packets/s) and unit capex.
struct Appliance {
  double packets_per_second;
  sim::Dollars capex;
};
Appliance appliance_of(FunctionKind kind) noexcept;

struct NfvServerParams {
  int cores = 16;
  sim::Dollars server_capex = 8000.0;
  sim::Watts server_power = 350.0;
};

struct ChainEvaluation {
  double max_throughput_pps = 0.0;   // saturation throughput of the chain
  sim::SimTime latency = 0;          // mean per-packet latency at given load
  sim::Dollars capex = 0.0;
  double utilization = 0.0;          // offered load / capacity
};

/// Evaluate a software (NFV) service chain on one server at `offered_pps`.
/// Packets traverse every function in order; cores are pooled (run-to-
/// completion model). Throws if the chain is empty.
ChainEvaluation evaluate_nfv_chain(const std::vector<FunctionKind>& chain,
                                   double offered_pps,
                                   const NfvServerParams& params = {});

/// Evaluate the same chain built from one fixed-function appliance per
/// function (capacity = min over appliances).
ChainEvaluation evaluate_appliance_chain(const std::vector<FunctionKind>& chain,
                                         double offered_pps);

}  // namespace rb::net

#include "net/topology.hpp"

namespace rb::net {

sim::BitsPerSecond rate_of(EthernetGen gen) noexcept {
  switch (gen) {
    case EthernetGen::k10G: return 10.0 * sim::kGbps;
    case EthernetGen::k40G: return 40.0 * sim::kGbps;
    case EthernetGen::k100G: return 100.0 * sim::kGbps;
    case EthernetGen::k400G: return 400.0 * sim::kGbps;
  }
  return 0.0;
}

int availability_year(EthernetGen gen) noexcept {
  switch (gen) {
    case EthernetGen::k10G: return 2010;
    case EthernetGen::k40G: return 2012;
    case EthernetGen::k100G: return 2016;
    case EthernetGen::k400G: return 2021;  // "after 2020" [18]
  }
  return 0;
}

sim::Dollars port_cost(EthernetGen gen) noexcept {
  // Commodity per-port pricing; $/Gbps falls with each generation but the
  // absolute per-port price rises (optics dominate at 100/400G).
  switch (gen) {
    case EthernetGen::k10G: return 60.0;
    case EthernetGen::k40G: return 180.0;
    case EthernetGen::k100G: return 350.0;
    case EthernetGen::k400G: return 900.0;
  }
  return 0.0;
}

sim::Watts port_power(EthernetGen gen) noexcept {
  switch (gen) {
    case EthernetGen::k10G: return 1.5;
    case EthernetGen::k40G: return 3.5;
    case EthernetGen::k100G: return 5.5;
    case EthernetGen::k400G: return 12.0;
  }
  return 0.0;
}

std::string to_string(EthernetGen gen) {
  switch (gen) {
    case EthernetGen::k10G: return "10GbE";
    case EthernetGen::k40G: return "40GbE";
    case EthernetGen::k100G: return "100GbE";
    case EthernetGen::k400G: return "400GbE";
  }
  return "?";
}

NodeId Topology::add_node(NodeKind kind, std::string name) {
  nodes_.push_back(NodeInfo{kind, std::move(name)});
  adj_.emplace_back();
  if (!node_up_.empty()) node_up_.push_back(true);
  if (!node_slow_.empty()) node_slow_.push_back(1.0);
  return static_cast<NodeId>(nodes_.size() - 1);
}

LinkId Topology::add_link(NodeId a, NodeId b, sim::BitsPerSecond rate,
                          sim::SimTime latency) {
  if (a >= nodes_.size() || b >= nodes_.size())
    throw std::invalid_argument{"Topology::add_link: unknown node"};
  if (a == b) throw std::invalid_argument{"Topology::add_link: self loop"};
  if (rate <= 0.0) throw std::invalid_argument{"Topology::add_link: rate <= 0"};
  links_.push_back(Link{a, b, rate, latency});
  if (!link_up_.empty()) link_up_.push_back(true);
  if (!link_slow_.empty()) link_slow_.push_back(1.0);
  const auto id = static_cast<LinkId>(links_.size() - 1);
  adj_[a].emplace_back(b, id);
  adj_[b].emplace_back(a, id);
  return id;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == kind) out.push_back(id);
  }
  return out;
}

void Topology::set_node_up(NodeId id, bool up) {
  if (id >= nodes_.size())
    throw std::invalid_argument{"Topology::set_node_up: unknown node"};
  if (node_up_.empty()) node_up_.assign(nodes_.size(), true);
  if (node_up_[id] == up) return;
  node_up_[id] = up;
  ++epoch_;
}

void Topology::set_link_up(LinkId id, bool up) {
  if (id >= links_.size())
    throw std::invalid_argument{"Topology::set_link_up: unknown link"};
  if (link_up_.empty()) link_up_.assign(links_.size(), true);
  if (link_up_[id] == up) return;
  link_up_[id] = up;
  ++epoch_;
}

void Topology::set_node_slowdown(NodeId id, double factor) {
  if (id >= nodes_.size())
    throw std::invalid_argument{"Topology::set_node_slowdown: unknown node"};
  if (factor < 1.0)
    throw std::invalid_argument{"Topology::set_node_slowdown: factor < 1"};
  if (node_slow_.empty()) node_slow_.assign(nodes_.size(), 1.0);
  if (node_slow_[id] == factor) return;
  node_slow_[id] = factor;
  ++epoch_;
}

void Topology::set_link_slowdown(LinkId id, double factor) {
  if (id >= links_.size())
    throw std::invalid_argument{"Topology::set_link_slowdown: unknown link"};
  if (factor < 1.0)
    throw std::invalid_argument{"Topology::set_link_slowdown: factor < 1"};
  if (link_slow_.empty()) link_slow_.assign(links_.size(), 1.0);
  if (link_slow_[id] == factor) return;
  link_slow_[id] = factor;
  ++epoch_;
}

std::size_t Topology::degraded_nodes() const noexcept {
  std::size_t n = 0;
  for (const double f : node_slow_) n += f > 1.0 ? 1 : 0;
  return n;
}

std::size_t Topology::degraded_links() const noexcept {
  std::size_t n = 0;
  for (const double f : link_slow_) n += f > 1.0 ? 1 : 0;
  return n;
}

std::size_t Topology::down_nodes() const noexcept {
  std::size_t n = 0;
  for (const bool up : node_up_) n += up ? 0 : 1;
  return n;
}

std::size_t Topology::down_links() const noexcept {
  std::size_t n = 0;
  for (const bool up : link_up_) n += up ? 0 : 1;
  return n;
}

std::size_t Topology::switch_ports() const noexcept {
  std::size_t ports = 0;
  for (const auto& link : links_) {
    if (nodes_[link.a].kind != NodeKind::kHost) ++ports;
    if (nodes_[link.b].kind != NodeKind::kHost) ++ports;
  }
  return ports;
}

Topology make_fat_tree(int k, const FabricParams& params) {
  if (k < 2 || k % 2 != 0)
    throw std::invalid_argument{"make_fat_tree: k must be even and >= 2"};
  Topology topo;
  const int half = k / 2;
  const auto host_rate = rate_of(params.host_gen);
  const auto fabric_rate = rate_of(params.fabric_gen);

  // Core switches: (k/2)^2, indexed [i][j].
  std::vector<NodeId> core;
  core.reserve(static_cast<std::size_t>(half) * half);
  for (int i = 0; i < half * half; ++i) {
    core.push_back(
        topo.add_node(NodeKind::kCoreSwitch, "core" + std::to_string(i)));
  }

  int host_index = 0;
  for (int pod = 0; pod < k; ++pod) {
    std::vector<NodeId> agg(half), edge(half);
    for (int i = 0; i < half; ++i) {
      agg[i] = topo.add_node(
          NodeKind::kAggSwitch,
          "agg" + std::to_string(pod) + "_" + std::to_string(i));
      edge[i] = topo.add_node(
          NodeKind::kEdgeSwitch,
          "edge" + std::to_string(pod) + "_" + std::to_string(i));
    }
    // Edge <-> agg full bipartite inside the pod.
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        topo.add_link(edge[e], agg[a], fabric_rate, params.link_latency);
      }
    }
    // Agg i connects to core switches [i*half, (i+1)*half).
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        topo.add_link(agg[a], core[static_cast<std::size_t>(a) * half + c],
                      fabric_rate, params.link_latency);
      }
    }
    // Hosts under each edge switch.
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        const NodeId host = topo.add_node(
            NodeKind::kHost, "h" + std::to_string(host_index++));
        topo.add_link(host, edge[e], host_rate, params.link_latency);
      }
    }
  }
  return topo;
}

Topology make_leaf_spine(int spines, int leaves, int hosts_per_leaf,
                         const FabricParams& params) {
  if (spines <= 0 || leaves <= 0 || hosts_per_leaf <= 0)
    throw std::invalid_argument{"make_leaf_spine: counts must be positive"};
  Topology topo;
  const auto host_rate = rate_of(params.host_gen);
  const auto fabric_rate = rate_of(params.fabric_gen);

  std::vector<NodeId> spine(static_cast<std::size_t>(spines));
  for (int s = 0; s < spines; ++s) {
    spine[static_cast<std::size_t>(s)] =
        topo.add_node(NodeKind::kAggSwitch, "spine" + std::to_string(s));
  }
  int host_index = 0;
  for (int l = 0; l < leaves; ++l) {
    const NodeId leaf =
        topo.add_node(NodeKind::kEdgeSwitch, "leaf" + std::to_string(l));
    for (const NodeId s : spine) {
      topo.add_link(leaf, s, fabric_rate, params.link_latency);
    }
    for (int h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host =
          topo.add_node(NodeKind::kHost, "h" + std::to_string(host_index++));
      topo.add_link(host, leaf, host_rate, params.link_latency);
    }
  }
  return topo;
}

Topology make_star(int hosts, const FabricParams& params) {
  if (hosts <= 0)
    throw std::invalid_argument{"make_star: hosts must be positive"};
  Topology topo;
  const NodeId sw = topo.add_node(NodeKind::kEdgeSwitch, "sw0");
  for (int h = 0; h < hosts; ++h) {
    const NodeId host =
        topo.add_node(NodeKind::kHost, "h" + std::to_string(h));
    topo.add_link(host, sw, rate_of(params.host_gen), params.link_latency);
  }
  return topo;
}

Topology make_disaggregated_rack(int hosts, int pools, EthernetGen pool_gen,
                                 const FabricParams& params) {
  if (hosts <= 0 || pools <= 0)
    throw std::invalid_argument{
        "make_disaggregated_rack: counts must be positive"};
  Topology topo;
  const NodeId sw = topo.add_node(NodeKind::kEdgeSwitch, "rack-sw");
  for (int h = 0; h < hosts; ++h) {
    const NodeId host =
        topo.add_node(NodeKind::kHost, "h" + std::to_string(h));
    topo.add_link(host, sw, rate_of(params.host_gen), params.link_latency);
  }
  for (int p = 0; p < pools; ++p) {
    const NodeId pool =
        topo.add_node(NodeKind::kResourcePool, "pool" + std::to_string(p));
    topo.add_link(pool, sw, rate_of(pool_gen), params.link_latency);
  }
  return topo;
}

}  // namespace rb::net

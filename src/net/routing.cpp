#include "net/routing.hpp"

#include <deque>
#include <limits>

namespace rb::net {

namespace {
constexpr int kUnreachable = std::numeric_limits<int>::max();
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

Router::Router(const Topology& topo)
    : topo_{&topo},
      dist_(topo.node_count()),
      computed_(topo.node_count(), false),
      epoch_{topo.state_epoch()} {}

void Router::ensure_dist(NodeId dst) const {
  // Reconverge: drop every cached field when the fault state changed.
  if (epoch_ != topo_->state_epoch()) {
    computed_.assign(topo_->node_count(), false);
    dist_.resize(topo_->node_count());
    epoch_ = topo_->state_epoch();
  }
  if (computed_.at(dst)) return;
  auto& d = dist_[dst];
  d.assign(topo_->node_count(), kUnreachable);
  // A dead destination is unreachable from everywhere (including itself).
  if (topo_->node_up(dst)) {
    d[dst] = 0;
    std::deque<NodeId> frontier{dst};
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (const auto& [peer, link] : topo_->adjacency(cur)) {
        if (!topo_->link_usable(link)) continue;
        if (d[peer] == kUnreachable) {
          d[peer] = d[cur] + 1;
          frontier.push_back(peer);
        }
      }
    }
  }
  computed_[dst] = true;
}

int Router::distance(NodeId from, NodeId to) const {
  ensure_dist(to);
  const int d = dist_[to].at(from);
  if (d == kUnreachable)
    throw NoRouteError{"Router::distance: unreachable destination"};
  return d;
}

bool Router::reachable(NodeId from, NodeId to) const {
  if (from >= topo_->node_count() || to >= topo_->node_count()) return false;
  ensure_dist(to);
  return dist_[to][from] != kUnreachable;
}

std::vector<std::pair<NodeId, LinkId>> Router::next_hops(NodeId at,
                                                         NodeId dst) const {
  ensure_dist(dst);
  const auto& d = dist_[dst];
  if (d.at(at) == kUnreachable)
    throw NoRouteError{"Router::next_hops: unreachable destination"};
  std::vector<std::pair<NodeId, LinkId>> hops;
  for (const auto& [peer, link] : topo_->adjacency(at)) {
    if (d[peer] == d[at] - 1 && topo_->link_usable(link))
      hops.emplace_back(peer, link);
  }
  return hops;
}

std::vector<LinkId> Router::path(NodeId src, NodeId dst,
                                 std::uint64_t flow_hash) const {
  std::vector<LinkId> links;
  if (src == dst) return links;
  ensure_dist(dst);
  NodeId at = src;
  int hop = 0;
  while (at != dst) {
    const auto options = next_hops(at, dst);
    if (options.empty()) throw NoRouteError{"Router::path: no next hop"};
    // Deterministic per-hop ECMP: hash(flow, hop) selects among options.
    const auto idx = static_cast<std::size_t>(
        mix64(flow_hash ^ (static_cast<std::uint64_t>(hop) << 32)) %
        options.size());
    links.push_back(options[idx].second);
    at = options[idx].first;
    ++hop;
  }
  return links;
}

}  // namespace rb::net

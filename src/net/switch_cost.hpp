#pragma once
// Switch procurement cost models (Sec IV.A.1).
//
// The roadmap contrasts three procurement models: vendor-integrated branded
// switches, bare-metal switches with a separately procured third-party NOS
// (Big Switch Light OS, Cumulus, Pica8 — or build-your-own like Facebook),
// and white-box switches (commodity hardware preloaded with a third-party
// NOS). The argument in the paper is economic; these models make it
// computable for a whole topology.

#include <string>

#include "net/topology.hpp"

namespace rb::net {

enum class ProcurementModel : std::uint8_t {
  kVendorIntegrated,  // branded switch, bundled NOS and support
  kBareMetal,         // commodity switch + third-party NOS licence
  kWhiteBox,          // commodity switch preloaded with third-party NOS
};

std::string to_string(ProcurementModel model);

struct SwitchCostParams {
  // Multiplier over commodity per-port hardware cost charged by integrated
  // vendors (bundles NOS, support and margin).
  double vendor_premium = 2.8;
  // Annual third-party NOS licence per switch (bare metal).
  sim::Dollars nos_license_per_switch_per_year = 500.0;
  // White-box preload surcharge over bare-metal hardware, per switch.
  sim::Dollars whitebox_preload_surcharge = 500.0;
  // Annual vendor support contract as a fraction of hardware capex.
  double vendor_support_fraction = 0.15;
  // Annual third-party support for bare-metal/white-box, per switch.
  sim::Dollars third_party_support_per_switch = 150.0;
  // Electricity price, $ per kWh, for the opex term.
  double dollars_per_kwh = 0.12;
};

struct NetworkCost {
  sim::Dollars capex = 0.0;
  sim::Dollars opex_per_year = 0.0;  // licences + support + power
  std::size_t switches = 0;
  std::size_t ports = 0;

  sim::Dollars total(sim::Years horizon) const {
    return capex + opex_per_year * horizon;
  }
};

/// Cost of all switching gear in `topo` when every fabric port runs at
/// `gen`, under the given procurement model.
NetworkCost network_cost(const Topology& topo, ProcurementModel model,
                         EthernetGen gen, const SwitchCostParams& params = {});

}  // namespace rb::net

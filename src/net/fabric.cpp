#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace rb::net {

namespace {
// A flow is considered drained when fewer than this many bits remain;
// guards against floating-point residue never reaching exactly zero.
constexpr double kResidualBits = 1e-6;

// Relative tolerance when matching a link's fair share against the round's
// bottleneck share during progressive filling.
constexpr double kShareSlack = 1e-12;

// kMaxMinIncremental falls back to a full solve when the dirty component
// exceeds this fraction of the active flows (the closure walk aborts early,
// so an oversized component never costs more than the full solve it turns
// into). Small components always go incremental (floor of 16 flows).
constexpr std::size_t kIncrementalFloor = 16;

const obs::Logger& net_log() {
  static const obs::Logger logger{"net"};
  return logger;
}

/// Fabric telemetry, resolved once per process; increments are guarded by
/// obs::enabled() at every call site.
struct NetMetrics {
  obs::Counter* started;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Counter* rerouted;
  obs::LatencyHistogram* fct_seconds;

  static NetMetrics& get() {
    auto& r = obs::Registry::global();
    static NetMetrics m{
        &r.counter("net.flows_started"),
        &r.counter("net.flows_completed"),
        &r.counter("net.flows_failed"),
        &r.counter("net.flows_cancelled"),
        &r.counter("net.flows_rerouted"),
        &r.histogram("net.fct_seconds",
                     obs::exponential_bounds(1e-6, 2.0, 40))};
    return m;
  }
};
}  // namespace

FlowSimulator::FlowSimulator(sim::Simulator& sim, const Topology& topo,
                             const Router& router, RateAllocation allocation)
    : sim_{&sim}, topo_{&topo}, router_{&router}, allocation_{allocation} {
  ensure_dlinks();
}

FlowSimulator::~FlowSimulator() {
  completion_event_.cancel();
  realloc_event_.cancel();
}

// --- arena plumbing -------------------------------------------------------

void FlowSimulator::ensure_dlinks() {
  const std::size_t want = 2 * topo_->link_count();
  if (dlinks_.size() < want) dlinks_.resize(want);
}

std::uint32_t FlowSimulator::acquire_slot() {
  std::uint32_t idx;
  if (free_head_ != kNoSlot) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  ++active_count_;
  return idx;
}

void FlowSimulator::release_slot(std::uint32_t idx) {
  FlowSlot& s = slots_[idx];
  id_to_slot_.erase(s.id);
  s.id = 0;
  s.on_complete = nullptr;
  s.causal = {};
  s.path.clear();  // keeps capacity for the next tenant
  s.next_free = free_head_;
  free_head_ = idx;
  --active_count_;
}

void FlowSimulator::link_flow(std::uint32_t idx) {
  FlowSlot& s = slots_[idx];
  for (std::uint32_t h = 0; h < s.path.size(); ++h) {
    DirLink& dl = dlinks_[s.path[h].dlink];
    s.path[h].pos = static_cast<std::uint32_t>(dl.flows.size());
    dl.flows.push_back(LinkEntry{idx, h});
  }
}

void FlowSimulator::unlink_flow(std::uint32_t idx) {
  FlowSlot& s = slots_[idx];
  for (const PathHop& hop : s.path) {
    DirLink& dl = dlinks_[hop.dlink];
    const LinkEntry moved = dl.flows.back();
    dl.flows[hop.pos] = moved;
    slots_[moved.slot].path[moved.hop].pos = hop.pos;
    dl.flows.pop_back();
  }
}

void FlowSimulator::mark_path_dirty(const std::vector<PathHop>& path) {
  if (allocation_ != RateAllocation::kMaxMinIncremental) return;
  for (const PathHop& hop : path) {
    DirLink& dl = dlinks_[hop.dlink];
    if (dl.dirty == dirty_epoch_) continue;
    dl.dirty = dirty_epoch_;
    dirty_links_.push_back(hop.dlink);
  }
}

void FlowSimulator::build_path(FlowId id, NodeId src, NodeId dst,
                               std::vector<PathHop>& path,
                               sim::SimTime& latency) const {
  path.clear();
  latency = 0;
  if (src == dst) return;
  const auto links = router_->path(src, dst, mix64(id));
  path.reserve(links.size());
  NodeId at = src;
  for (const LinkId link_id : links) {
    const Link& link = topo_->link(link_id);
    const std::uint32_t dir = (link.a == at) ? 0 : 1;
    path.push_back(PathHop{(static_cast<std::uint32_t>(link_id) << 1) | dir, 0});
    latency += link.latency;
    at = (link.a == at) ? link.b : link.a;
  }
}

// --- public API -----------------------------------------------------------

FlowId FlowSimulator::start_flow(NodeId src, NodeId dst, sim::Bytes size,
                                 FlowCallback on_complete,
                                 const obs::TraceContext& parent) {
  const FlowId id = next_id_++;
  sim::SimTime latency = 0;
  build_path(id, src, dst, path_scratch_, latency);  // throws NoRouteError
  ++started_;
  if (obs::enabled()) {
    NetMetrics::get().started->add();
    obs::TraceRecorder::global().async_begin(
        "net.flow", "flow", id, sim_->now(),
        {obs::trace_arg("src", static_cast<std::uint64_t>(src)),
         obs::trace_arg("dst", static_cast<std::uint64_t>(dst)),
         obs::trace_arg("bytes", static_cast<std::uint64_t>(size))});
  }
  // Causal propagation: the flow's lifetime becomes a network span of the
  // caller's request tree (annotated with the flow id for cross-reference).
  obs::TraceContext causal;
  {
    auto& tracer = obs::RequestTracer::global();
    if (tracer.enabled() && parent.active()) {
      causal.trace_id = parent.trace_id;
      causal.span_id =
          tracer.begin_span(parent, obs::Segment::kNetwork, "net.flow",
                            sim_->now(), static_cast<std::int64_t>(id));
    }
  }

  const double bits = static_cast<double>(size) * 8.0;
  if (bits <= kResidualBits || path_scratch_.empty()) {
    // Degenerate flow: completes after propagation only.
    FlowRecord record{id,
                      src,
                      dst,
                      size,
                      sim_->now(),
                      sim_->now() + latency,
                      FlowOutcome::kCompleted,
                      size};
    sim_->schedule_in(latency, [this, record, causal,
                                cb = std::move(on_complete)] {
      ++completed_;
      const double fct_s = sim::to_seconds(record.finish - record.start);
      fct_.add(fct_s);
      if (obs::enabled()) {
        NetMetrics::get().completed->add();
        NetMetrics::get().fct_seconds->observe(fct_s);
        obs::TraceRecorder::global().async_end(
            "net.flow", "flow", record.id, sim_->now(),
            {obs::trace_arg("outcome", "completed")});
      }
      if (causal.active()) {
        obs::RequestTracer::global().end_span(causal.trace_id, causal.span_id,
                                              sim_->now());
      }
      if (cb) cb(record);
    });
    return id;
  }

  advance_to_now();
  ensure_dlinks();
  const std::uint32_t idx = acquire_slot();
  FlowSlot& s = slots_[idx];
  s.src = src;
  s.dst = dst;
  s.size = size;
  s.remaining_bits = bits;
  s.rate = 0.0;
  s.start = sim_->now();
  s.latency = latency;
  s.id = id;
  s.path.swap(path_scratch_);
  s.on_complete = std::move(on_complete);
  s.causal = causal;
  id_to_slot_.emplace(id, idx);
  link_flow(idx);
  mark_path_dirty(s.path);
  request_realloc();
  return id;
}

bool FlowSimulator::cancel_flow(FlowId id) {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  advance_to_now();
  const std::uint32_t idx = it->second;
  if (slots_[idx].causal.active()) {
    obs::RequestTracer::global().end_span(slots_[idx].causal.trace_id,
                                          slots_[idx].causal.span_id,
                                          sim_->now());
  }
  mark_path_dirty(slots_[idx].path);
  unlink_flow(idx);
  release_slot(idx);
  ++cancelled_;
  if (obs::enabled()) {
    NetMetrics::get().cancelled->add();
    obs::TraceRecorder::global().async_end(
        "net.flow", "flow", id, sim_->now(),
        {obs::trace_arg("outcome", "cancelled")});
  }
  request_realloc();
  return true;
}

bool FlowSimulator::path_is_live(const FlowSlot& flow) const {
  if (!topo_->node_up(flow.src) || !topo_->node_up(flow.dst)) return false;
  for (const PathHop& hop : flow.path) {
    if (!topo_->link_usable(static_cast<LinkId>(hop.dlink >> 1))) return false;
  }
  return true;
}

void FlowSimulator::handle_topology_change() {
  advance_to_now();
  ensure_dlinks();
  // Pass 1: classify every active flow against the new component state.
  std::vector<std::pair<FlowId, std::uint32_t>> broken;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].id != 0 && !path_is_live(slots_[i])) {
      broken.emplace_back(slots_[i].id, i);
    }
  }
  if (broken.empty()) {
    // Repairs can still open shorter paths for *new* flows; active flows
    // stay put (no flap-induced reshuffling) — nothing to do.
    return;
  }
  std::sort(broken.begin(), broken.end());  // deterministic order
  // Pass 2: reroute around the failure or fail the flow.
  for (const auto& [id, idx] : broken) {
    FlowSlot& s = slots_[idx];
    try {
      sim::SimTime latency = 0;
      build_path(id, s.src, s.dst, path_scratch_, latency);
      mark_path_dirty(s.path);
      unlink_flow(idx);
      s.path.swap(path_scratch_);
      s.latency = latency;
      link_flow(idx);
      mark_path_dirty(s.path);
      ++rerouted_;
      if (obs::enabled()) {
        NetMetrics::get().rerouted->add();
        obs::TraceRecorder::global().instant(
            "net.flow", "reroute", sim_->now(),
            {obs::trace_arg("flow", id)});
      }
      net_log().info() << "flow " << id << " rerouted around failure";
    } catch (const NoRouteError&) {
      fail_flow(idx);
    }
  }
  realloc_pending_ = true;
  flush_realloc();
}

double FlowSimulator::current_rate(FlowId id) const {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end())
    throw std::invalid_argument{"FlowSimulator::current_rate: unknown flow"};
  // Settle any same-timestamp coalesced epoch so the caller never sees a
  // stale (or zero, for a just-started flow) rate.
  const_cast<FlowSimulator*>(this)->flush_realloc();
  return slots_[it->second].rate;
}

void FlowSimulator::advance_to_now() {
  const sim::SimTime now = sim_->now();
  const double elapsed = sim::to_seconds(now - last_advance_);
  if (elapsed > 0.0) {
    // Flat arena sweep: one contiguous pass, free slots skipped by the
    // id == 0 test.
    for (FlowSlot& s : slots_) {
      if (s.id == 0) continue;
      s.remaining_bits = std::max(0.0, s.remaining_bits - s.rate * elapsed);
    }
  }
  last_advance_ = now;
}

// --- coalesced reallocation ----------------------------------------------

void FlowSimulator::request_realloc() {
  if (realloc_pending_) {
    ++astats_.coalesced_events;
    return;
  }
  realloc_pending_ = true;
  // Zero-delay event: every arrival/departure landing on this timestamp
  // shares the single solve that runs when the event fires (or earlier, if
  // a synchronous query forces the flush).
  realloc_event_ = sim_->schedule_in(0, [this] { flush_realloc(); });
}

void FlowSimulator::flush_realloc() {
  if (!realloc_pending_) return;
  realloc_pending_ = false;
  realloc_event_.cancel();
  advance_to_now();
  solve();
  schedule_next_completion();
}

void FlowSimulator::solve() {
  ++astats_.reallocations;
  if (allocation_ == RateAllocation::kEqualSharePerLink) {
    solve_equal_share();
  } else if (allocation_ == RateAllocation::kMaxMinIncremental &&
             try_solve_incremental()) {
    // Component solve ran (or provably nothing needed re-solving).
  } else {
    subset_slots_.clear();
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].id != 0) subset_slots_.push_back(i);
    }
    solve_subset(subset_slots_);
    ++astats_.full_solves;
  }
  dirty_links_.clear();
  ++dirty_epoch_;
}

bool FlowSimulator::try_solve_incremental() {
  if (dirty_links_.empty()) return true;  // rates are already exact
  const std::size_t limit =
      std::max<std::size_t>(kIncrementalFloor, active_count_ / 2);
  // Closure walk over the flow/link bipartite graph: every flow on a dirty
  // link, every link on such a flow's path, transitively. Progressive
  // filling decomposes over connected components, so re-solving exactly
  // this closure (with fresh capacities) reproduces the full solve.
  ++visit_epoch_;
  bfs_stack_.assign(dirty_links_.begin(), dirty_links_.end());
  for (const std::uint32_t dlink : bfs_stack_) {
    dlinks_[dlink].visit = visit_epoch_;
  }
  subset_slots_.clear();
  while (!bfs_stack_.empty()) {
    const std::uint32_t dlink = bfs_stack_.back();
    bfs_stack_.pop_back();
    for (const LinkEntry& entry : dlinks_[dlink].flows) {
      FlowSlot& s = slots_[entry.slot];
      if (s.visit == visit_epoch_) continue;
      s.visit = visit_epoch_;
      subset_slots_.push_back(entry.slot);
      if (subset_slots_.size() > limit) {
        ++astats_.incremental_fallbacks;
        return false;  // oversized component: full solve is cheaper
      }
      for (const PathHop& hop : s.path) {
        DirLink& dl = dlinks_[hop.dlink];
        if (dl.visit != visit_epoch_) {
          dl.visit = visit_epoch_;
          bfs_stack_.push_back(hop.dlink);
        }
      }
    }
  }
  // An empty closure means the dirty links lost their last flows (pure
  // departures): no surviving flow shares a link with the change, so every
  // remaining rate is still the exact max-min allocation.
  if (!subset_slots_.empty()) solve_subset(subset_slots_);
  ++astats_.incremental_solves;
  return true;
}

void FlowSimulator::solve_subset(const std::vector<std::uint32_t>& subset) {
  if (subset.empty()) return;
  ++solve_epoch_;
  active_links_.clear();
  for (const std::uint32_t idx : subset) {
    FlowSlot& s = slots_[idx];
    s.frozen = false;
    for (const PathHop& hop : s.path) {
      DirLink& dl = dlinks_[hop.dlink];
      if (dl.inited != solve_epoch_) {
        dl.inited = solve_epoch_;
        dl.remaining_cap = topo_->link(static_cast<LinkId>(hop.dlink >> 1)).rate;
        dl.unfrozen = 0;
        active_links_.push_back(hop.dlink);
      }
      ++dl.unfrozen;
    }
  }
  if (obs::enabled()) gauge_links_ = active_links_;

  // Max-min fair: progressive filling over directed link capacities. Each
  // round finds the bottleneck share, then freezes exactly the flows on
  // links at that share — only their membership lists are touched, so a
  // round costs O(live links + flows frozen × path), not O(all flows).
  std::size_t remaining = subset.size();
  while (remaining > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t live = 0;
    for (const std::uint32_t dlink : active_links_) {
      const DirLink& dl = dlinks_[dlink];
      if (dl.unfrozen == 0) continue;  // compact out saturated links
      active_links_[live++] = dlink;
      const double share = dl.remaining_cap / dl.unfrozen;
      if (share < best_share) best_share = share;
    }
    active_links_.resize(live);
    if (live == 0) break;  // defensive: every remaining flow has an empty path
    ++astats_.solve_rounds;

    const double threshold = best_share * (1 + kShareSlack);
    for (const std::uint32_t dlink : active_links_) {
      DirLink& dl = dlinks_[dlink];
      if (dl.unfrozen == 0) continue;
      if (dl.remaining_cap / dl.unfrozen > threshold) continue;
      // Freeze every unfrozen flow crossing this bottleneck at the share.
      for (std::size_t e = 0; e < dl.flows.size(); ++e) {
        FlowSlot& s = slots_[dl.flows[e].slot];
        if (s.frozen) continue;
        s.frozen = true;
        s.rate = best_share;
        --remaining;
        for (const PathHop& hop : s.path) {
          DirLink& on = dlinks_[hop.dlink];
          on.remaining_cap = std::max(0.0, on.remaining_cap - best_share);
          --on.unfrozen;
        }
      }
    }
  }

  if (obs::enabled()) update_link_gauges();
}

void FlowSimulator::solve_equal_share() {
  // Naive ablation baseline: every flow gets the minimum over its links of
  // capacity / flows-on-link, computed once without redistribution. The
  // per-link crossing count is just the membership list size.
  for (FlowSlot& s : slots_) {
    if (s.id == 0) continue;
    double rate = std::numeric_limits<double>::infinity();
    for (const PathHop& hop : s.path) {
      const DirLink& dl = dlinks_[hop.dlink];
      const double cap = topo_->link(static_cast<LinkId>(hop.dlink >> 1)).rate;
      rate = std::min(rate, cap / static_cast<double>(dl.flows.size()));
    }
    s.rate = rate;
  }
}

void FlowSimulator::update_link_gauges() {
  auto& registry = obs::Registry::global();
  for (const std::uint32_t dlink : gauge_links_) {
    auto it = link_util_gauges_.find(dlink);
    if (it == link_util_gauges_.end()) {
      const auto link_id = static_cast<LinkId>(dlink >> 1);
      it = link_util_gauges_
               .emplace(dlink,
                        &registry.gauge(
                            "net.link_utilization",
                            {{"link", std::to_string(link_id)},
                             {"dir", (dlink & 1) == 0 ? "fwd" : "rev"}}))
               .first;
    }
    const DirLink& dl = dlinks_[dlink];
    const double cap = topo_->link(static_cast<LinkId>(dlink >> 1)).rate;
    const double allocated = std::max(0.0, cap - dl.remaining_cap);
    it->second->set(cap > 0.0 ? allocated / cap : 0.0);
  }
}

// --- completions ----------------------------------------------------------

void FlowSimulator::schedule_next_completion() {
  completion_event_.cancel();
  if (active_count_ == 0) return;
  double earliest_s = std::numeric_limits<double>::infinity();
  for (const FlowSlot& s : slots_) {
    if (s.id == 0 || s.rate <= 0.0) continue;
    earliest_s = std::min(earliest_s, s.remaining_bits / s.rate);
  }
  if (!std::isfinite(earliest_s))
    throw std::logic_error{"FlowSimulator: active flows with zero rate"};
  // Ceil to >= 1 ps so simulated time strictly advances.
  const sim::SimTime delay =
      std::max<sim::SimTime>(1, sim::from_seconds(earliest_s) + 1);
  completion_event_ =
      sim_->schedule_in(delay, [this] { handle_completion_event(); });
}

void FlowSimulator::handle_completion_event() {
  // Settle any same-timestamp churn first so every rate is fresh before the
  // drained-flow scan (also reschedules if the pending epoch changed the
  // earliest completion).
  flush_realloc();
  advance_to_now();
  std::vector<std::pair<FlowId, std::uint32_t>> done;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].id != 0 && slots_[i].remaining_bits <= kResidualBits) {
      done.emplace_back(slots_[i].id, i);
    }
  }
  // Deterministic completion order.
  std::sort(done.begin(), done.end());
  for (const auto& [id, idx] : done) finish_flow(idx);
  if (!done.empty()) {
    realloc_pending_ = true;
    flush_realloc();
  } else {
    schedule_next_completion();
  }
}

void FlowSimulator::finish_flow(std::uint32_t idx) {
  FlowSlot& s = slots_[idx];
  ++completed_;
  const FlowId id = s.id;
  FlowRecord record{id,
                    s.src,
                    s.dst,
                    s.size,
                    s.start,
                    sim_->now() + s.latency,
                    FlowOutcome::kCompleted,
                    s.size};
  auto cb = std::move(s.on_complete);
  if (s.causal.active()) {
    obs::RequestTracer::global().end_span(s.causal.trace_id, s.causal.span_id,
                                          record.finish);
    s.causal = {};
  }
  mark_path_dirty(s.path);
  unlink_flow(idx);
  release_slot(idx);
  const double fct_s = sim::to_seconds(record.finish - record.start);
  fct_.add(fct_s);
  if (obs::enabled()) {
    NetMetrics::get().completed->add();
    NetMetrics::get().fct_seconds->observe(fct_s);
    obs::TraceRecorder::global().async_end(
        "net.flow", "flow", id, sim_->now(),
        {obs::trace_arg("outcome", "completed")});
  }
  if (cb) cb(record);
}

void FlowSimulator::fail_flow(std::uint32_t idx) {
  FlowSlot& s = slots_[idx];
  ++failed_;
  const FlowId id = s.id;
  const double sent_bits =
      static_cast<double>(s.size) * 8.0 - s.remaining_bits;
  FlowRecord record{id,
                    s.src,
                    s.dst,
                    s.size,
                    s.start,
                    sim_->now(),
                    FlowOutcome::kFailed,
                    static_cast<sim::Bytes>(std::max(0.0, sent_bits) / 8.0)};
  auto cb = std::move(s.on_complete);
  if (s.causal.active()) {
    obs::RequestTracer::global().end_span(s.causal.trace_id, s.causal.span_id,
                                          sim_->now());
    s.causal = {};
  }
  mark_path_dirty(s.path);
  unlink_flow(idx);
  release_slot(idx);
  if (obs::enabled()) {
    NetMetrics::get().failed->add();
    obs::TraceRecorder::global().async_end(
        "net.flow", "flow", id, sim_->now(),
        {obs::trace_arg("outcome", "failed")});
  }
  net_log().warn() << "flow " << id << " failed: endpoints disconnected";
  if (cb) cb(record);
}

sim::SimTime simulate_shuffle(const Topology& topo, sim::Bytes bytes_per_pair,
                              RateAllocation allocation) {
  sim::Simulator sim;
  Router router{topo};
  FlowSimulator fabric{sim, topo, router, allocation};
  const auto hosts = topo.nodes_of_kind(NodeKind::kHost);
  sim::SimTime last_finish = 0;
  // All H×(H−1) starts land on timestamp 0 and share one coalesced
  // reallocation epoch instead of paying H×(H−1) recomputes.
  for (const NodeId src : hosts) {
    for (const NodeId dst : hosts) {
      if (src == dst) continue;
      fabric.start_flow(src, dst, bytes_per_pair,
                        [&last_finish](const FlowRecord& r) {
                          last_finish = std::max(last_finish, r.finish);
                        });
    }
  }
  sim.run();
  return last_finish;
}

}  // namespace rb::net

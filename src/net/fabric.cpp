#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace rb::net {

namespace {
// A flow is considered drained when fewer than this many bits remain;
// guards against floating-point residue never reaching exactly zero.
constexpr double kResidualBits = 1e-6;

const obs::Logger& net_log() {
  static const obs::Logger logger{"net"};
  return logger;
}

/// Fabric telemetry, resolved once per process; increments are guarded by
/// obs::enabled() at every call site.
struct NetMetrics {
  obs::Counter* started;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Counter* rerouted;
  obs::LatencyHistogram* fct_seconds;

  static NetMetrics& get() {
    auto& r = obs::Registry::global();
    static NetMetrics m{
        &r.counter("net.flows_started"),
        &r.counter("net.flows_completed"),
        &r.counter("net.flows_failed"),
        &r.counter("net.flows_cancelled"),
        &r.counter("net.flows_rerouted"),
        &r.histogram("net.fct_seconds",
                     obs::exponential_bounds(1e-6, 2.0, 40))};
    return m;
  }
};
}  // namespace

FlowSimulator::FlowSimulator(sim::Simulator& sim, const Topology& topo,
                             const Router& router, RateAllocation allocation)
    : sim_{&sim}, topo_{&topo}, router_{&router}, allocation_{allocation} {}

void FlowSimulator::build_path(FlowId id, Active& flow) const {
  flow.dpath.clear();
  flow.latency = 0;
  if (flow.src == flow.dst) return;
  const auto links = router_->path(flow.src, flow.dst, mix64(id));
  flow.dpath.reserve(links.size());
  NodeId at = flow.src;
  for (const LinkId link_id : links) {
    const Link& link = topo_->link(link_id);
    const int dir = (link.a == at) ? 0 : 1;
    flow.dpath.push_back((static_cast<std::uint64_t>(link_id) << 1) |
                         static_cast<std::uint64_t>(dir));
    flow.latency += link.latency;
    at = (link.a == at) ? link.b : link.a;
  }
}

FlowId FlowSimulator::start_flow(NodeId src, NodeId dst, sim::Bytes size,
                                 FlowCallback on_complete) {
  const FlowId id = next_id_++;
  Active flow;
  flow.src = src;
  flow.dst = dst;
  flow.size = size;
  flow.remaining_bits = static_cast<double>(size) * 8.0;
  flow.start = sim_->now();
  flow.on_complete = std::move(on_complete);

  build_path(id, flow);  // throws NoRouteError when disconnected
  ++started_;
  if (obs::enabled()) {
    NetMetrics::get().started->add();
    obs::TraceRecorder::global().async_begin(
        "net.flow", "flow", id, sim_->now(),
        {obs::trace_arg("src", static_cast<std::uint64_t>(src)),
         obs::trace_arg("dst", static_cast<std::uint64_t>(dst)),
         obs::trace_arg("bytes", static_cast<std::uint64_t>(size))});
  }

  if (flow.remaining_bits <= kResidualBits || flow.dpath.empty()) {
    // Degenerate flow: completes after propagation only.
    const sim::SimTime latency = flow.latency;
    FlowRecord record{id,
                      src,
                      dst,
                      size,
                      flow.start,
                      flow.start + latency,
                      FlowOutcome::kCompleted,
                      size};
    auto cb = std::move(flow.on_complete);
    sim_->schedule_in(latency, [this, record, cb = std::move(cb)] {
      ++completed_;
      const double fct_s = sim::to_seconds(record.finish - record.start);
      fct_.add(fct_s);
      if (obs::enabled()) {
        NetMetrics::get().completed->add();
        NetMetrics::get().fct_seconds->observe(fct_s);
        obs::TraceRecorder::global().async_end(
            "net.flow", "flow", record.id, sim_->now(),
            {obs::trace_arg("outcome", "completed")});
      }
      if (cb) cb(record);
    });
    return id;
  }

  advance_to_now();
  flows_.emplace(id, std::move(flow));
  reallocate();
  schedule_next_completion();
  return id;
}

bool FlowSimulator::cancel_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advance_to_now();
  flows_.erase(it);
  ++cancelled_;
  if (obs::enabled()) {
    NetMetrics::get().cancelled->add();
    obs::TraceRecorder::global().async_end(
        "net.flow", "flow", id, sim_->now(),
        {obs::trace_arg("outcome", "cancelled")});
  }
  reallocate();
  schedule_next_completion();
  return true;
}

bool FlowSimulator::path_is_live(const Active& flow) const {
  if (!topo_->node_up(flow.src) || !topo_->node_up(flow.dst)) return false;
  for (const std::uint64_t key : flow.dpath) {
    if (!topo_->link_usable(static_cast<LinkId>(key >> 1))) return false;
  }
  return true;
}

void FlowSimulator::handle_topology_change() {
  advance_to_now();
  // Pass 1: classify every active flow against the new component state.
  std::vector<FlowId> broken;
  for (const auto& [id, flow] : flows_) {
    if (!path_is_live(flow)) broken.push_back(id);
  }
  if (broken.empty()) {
    // Repairs can still open shorter paths for *new* flows; active flows
    // stay put (no flap-induced reshuffling) — nothing to do.
    return;
  }
  std::sort(broken.begin(), broken.end());  // deterministic order
  // Pass 2: reroute around the failure or fail the flow.
  for (const FlowId id : broken) {
    auto& flow = flows_.at(id);
    try {
      build_path(id, flow);
      ++rerouted_;
      if (obs::enabled()) {
        NetMetrics::get().rerouted->add();
        obs::TraceRecorder::global().instant(
            "net.flow", "reroute", sim_->now(),
            {obs::trace_arg("flow", id)});
      }
      net_log().info() << "flow " << id << " rerouted around failure";
    } catch (const NoRouteError&) {
      auto node = flows_.extract(id);
      fail_flow(id, std::move(node.mapped()));
    }
  }
  reallocate();
  schedule_next_completion();
}

double FlowSimulator::current_rate(FlowId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end())
    throw std::invalid_argument{"FlowSimulator::current_rate: unknown flow"};
  return it->second.rate;
}

void FlowSimulator::advance_to_now() {
  const sim::SimTime now = sim_->now();
  const double elapsed = sim::to_seconds(now - last_advance_);
  if (elapsed > 0.0) {
    for (auto& [id, flow] : flows_) {
      flow.remaining_bits =
          std::max(0.0, flow.remaining_bits - flow.rate * elapsed);
    }
  }
  last_advance_ = now;
}

void FlowSimulator::reallocate() {
  struct LinkState {
    double remaining_cap;
    int unfrozen = 0;
  };
  std::unordered_map<std::uint64_t, LinkState> links;
  for (const auto& [id, flow] : flows_) {
    for (const std::uint64_t key : flow.dpath) {
      auto [it, inserted] = links.try_emplace(
          key, LinkState{topo_->link(static_cast<LinkId>(key >> 1)).rate, 0});
      ++it->second.unfrozen;
    }
  }

  if (allocation_ == RateAllocation::kEqualSharePerLink) {
    // Naive ablation baseline: every flow gets the minimum over its links of
    // capacity / flows-on-link, computed once without redistribution.
    for (auto& [id, flow] : flows_) {
      double rate = std::numeric_limits<double>::infinity();
      for (const std::uint64_t key : flow.dpath) {
        const auto& state = links.at(key);
        rate = std::min(rate, state.remaining_cap / state.unfrozen);
      }
      flow.rate = rate;
    }
    return;
  }

  // Max-min fair: progressive filling over directed link capacities.

  std::unordered_map<FlowId, bool> frozen;
  frozen.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) frozen[id] = false;

  std::size_t remaining = flows_.size();
  while (remaining > 0) {
    // Find the bottleneck: the directed link with the smallest fair share.
    double best_share = std::numeric_limits<double>::infinity();
    bool found = false;
    for (const auto& [key, state] : links) {
      if (state.unfrozen == 0) continue;
      const double share = state.remaining_cap / state.unfrozen;
      if (share < best_share) {
        best_share = share;
        found = true;
      }
    }
    if (!found) break;  // defensive: every remaining flow has an empty path

    // Freeze every unfrozen flow crossing a link whose share equals the
    // bottleneck share (within tolerance), at that share.
    for (auto& [id, flow] : flows_) {
      if (frozen[id]) continue;
      bool bottlenecked = false;
      for (const std::uint64_t key : flow.dpath) {
        const auto& state = links.at(key);
        if (state.unfrozen > 0 &&
            state.remaining_cap / state.unfrozen <= best_share * (1 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      flow.rate = best_share;
      frozen[id] = true;
      --remaining;
      for (const std::uint64_t key : flow.dpath) {
        auto& state = links.at(key);
        state.remaining_cap = std::max(0.0, state.remaining_cap - best_share);
        --state.unfrozen;
      }
    }
  }

  if (obs::enabled()) {
    std::unordered_map<std::uint64_t, double> allocated;
    allocated.reserve(links.size());
    for (const auto& [key, state] : links) {
      const double cap = topo_->link(static_cast<LinkId>(key >> 1)).rate;
      allocated.emplace(key, std::max(0.0, cap - state.remaining_cap));
    }
    update_link_gauges(allocated);
  }
}

void FlowSimulator::update_link_gauges(
    const std::unordered_map<std::uint64_t, double>& allocated) {
  auto& registry = obs::Registry::global();
  for (const auto& [key, rate] : allocated) {
    auto it = link_util_gauges_.find(key);
    if (it == link_util_gauges_.end()) {
      const auto link_id = static_cast<LinkId>(key >> 1);
      it = link_util_gauges_
               .emplace(key,
                        &registry.gauge(
                            "net.link_utilization",
                            {{"link", std::to_string(link_id)},
                             {"dir", (key & 1) == 0 ? "fwd" : "rev"}}))
               .first;
    }
    const double cap = topo_->link(static_cast<LinkId>(key >> 1)).rate;
    it->second->set(cap > 0.0 ? rate / cap : 0.0);
  }
}

void FlowSimulator::schedule_next_completion() {
  completion_event_.cancel();
  if (flows_.empty()) return;
  double earliest_s = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0.0) continue;
    earliest_s = std::min(earliest_s, flow.remaining_bits / flow.rate);
  }
  if (!std::isfinite(earliest_s))
    throw std::logic_error{"FlowSimulator: active flows with zero rate"};
  // Ceil to >= 1 ps so simulated time strictly advances.
  const sim::SimTime delay =
      std::max<sim::SimTime>(1, sim::from_seconds(earliest_s) + 1);
  completion_event_ =
      sim_->schedule_in(delay, [this] { handle_completion_event(); });
}

void FlowSimulator::handle_completion_event() {
  advance_to_now();
  std::vector<FlowId> done;
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining_bits <= kResidualBits) done.push_back(id);
  }
  // Deterministic completion order.
  std::sort(done.begin(), done.end());
  for (const FlowId id : done) {
    auto node = flows_.extract(id);
    finish_flow(id, std::move(node.mapped()));
  }
  if (!done.empty()) reallocate();
  schedule_next_completion();
}

void FlowSimulator::finish_flow(FlowId id, Active&& flow) {
  ++completed_;
  FlowRecord record{id,
                    flow.src,
                    flow.dst,
                    flow.size,
                    flow.start,
                    sim_->now() + flow.latency,
                    FlowOutcome::kCompleted,
                    flow.size};
  const double fct_s = sim::to_seconds(record.finish - record.start);
  fct_.add(fct_s);
  if (obs::enabled()) {
    NetMetrics::get().completed->add();
    NetMetrics::get().fct_seconds->observe(fct_s);
    obs::TraceRecorder::global().async_end(
        "net.flow", "flow", id, sim_->now(),
        {obs::trace_arg("outcome", "completed")});
  }
  if (flow.on_complete) flow.on_complete(record);
}

void FlowSimulator::fail_flow(FlowId id, Active&& flow) {
  ++failed_;
  const double sent_bits =
      static_cast<double>(flow.size) * 8.0 - flow.remaining_bits;
  FlowRecord record{id,
                    flow.src,
                    flow.dst,
                    flow.size,
                    flow.start,
                    sim_->now(),
                    FlowOutcome::kFailed,
                    static_cast<sim::Bytes>(std::max(0.0, sent_bits) / 8.0)};
  if (obs::enabled()) {
    NetMetrics::get().failed->add();
    obs::TraceRecorder::global().async_end(
        "net.flow", "flow", id, sim_->now(),
        {obs::trace_arg("outcome", "failed")});
  }
  net_log().warn() << "flow " << id << " failed: endpoints disconnected";
  if (flow.on_complete) flow.on_complete(record);
}

sim::SimTime simulate_shuffle(const Topology& topo, sim::Bytes bytes_per_pair,
                              RateAllocation allocation) {
  sim::Simulator sim;
  Router router{topo};
  FlowSimulator fabric{sim, topo, router, allocation};
  const auto hosts = topo.nodes_of_kind(NodeKind::kHost);
  sim::SimTime last_finish = 0;
  for (const NodeId src : hosts) {
    for (const NodeId dst : hosts) {
      if (src == dst) continue;
      fabric.start_flow(src, dst, bytes_per_pair,
                        [&last_finish](const FlowRecord& r) {
                          last_finish = std::max(last_finish, r.finish);
                        });
    }
  }
  sim.run();
  return last_finish;
}

}  // namespace rb::net

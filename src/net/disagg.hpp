#pragma once
// Converged vs disaggregated ("composable") datacenter model (Sec IV.A.3).
//
// The roadmap: high bandwidth at all key interconnect nodes leads to
// "composable hardware — CPU, memory, I/O and storage that is purchased a la
// carte", which "facilitates regular upgrades and potentially eliminates the
// need and cost of replacing entire servers". We make that argument
// computable with (a) a bin-packing stranding model — converged servers
// strand resources because jobs rarely match the box shape — and (b) a
// rolling-upgrade TCO simulation where converged fleets replace whole
// servers while composable fleets replace only the aged resource sleds.
// Disaggregation pays a "network tax": extra fabric capex/power per node.

#include <span>
#include <vector>

#include "sim/units.hpp"

namespace rb::net {

/// A demand or capacity vector over the three pooled resource classes.
struct ResourceVector {
  double cores = 0.0;
  double mem_gib = 0.0;
  double storage_tib = 0.0;

  ResourceVector& operator+=(const ResourceVector& o) noexcept {
    cores += o.cores;
    mem_gib += o.mem_gib;
    storage_tib += o.storage_tib;
    return *this;
  }
  bool fits_in(const ResourceVector& cap) const noexcept {
    return cores <= cap.cores && mem_gib <= cap.mem_gib &&
           storage_tib <= cap.storage_tib;
  }
};

/// Fixed server shape for the converged fleet, with a capex breakdown so the
/// upgrade model can price partial replacement.
struct ServerShape {
  ResourceVector capacity{32.0, 256.0, 8.0};
  sim::Dollars cpu_cost = 4000.0;
  sim::Dollars mem_cost = 2500.0;
  sim::Dollars storage_cost = 1200.0;
  sim::Dollars chassis_cost = 1800.0;

  sim::Dollars total_cost() const noexcept {
    return cpu_cost + mem_cost + storage_cost + chassis_cost;
  }
};

struct PackingResult {
  std::size_t servers = 0;
  ResourceVector provisioned;  // total capacity bought
  ResourceVector used;         // total demand placed
  /// Fraction of provisioned resource left stranded, per class.
  double stranded_cores() const noexcept;
  double stranded_mem() const noexcept;
  double stranded_storage() const noexcept;
};

/// First-fit-decreasing packing of `jobs` onto identical `shape` servers.
/// Jobs larger than one server in any dimension throw std::invalid_argument.
PackingResult pack_converged(std::span<const ResourceVector> jobs,
                             const ServerShape& shape);

struct DisaggParams {
  // Sled granularity and unit prices (match ServerShape component pricing).
  double cores_per_sled = 32.0;
  double mem_gib_per_sled = 256.0;
  double storage_tib_per_sled = 8.0;
  sim::Dollars cpu_sled_cost = 4200.0;      // cpu_cost + sled packaging
  sim::Dollars mem_sled_cost = 2700.0;
  sim::Dollars storage_sled_cost = 1300.0;
  // Fabric tax: composable pools need high-bandwidth interconnect per sled.
  sim::Dollars fabric_cost_per_sled = 600.0;
  // Allocation overhead: pool scheduler reserves headroom.
  double headroom = 0.05;
};

struct DisaggResult {
  std::size_t cpu_sleds = 0;
  std::size_t mem_sleds = 0;
  std::size_t storage_sleds = 0;
  sim::Dollars capex = 0.0;
  ResourceVector provisioned;
  ResourceVector used;
};

/// Size disaggregated pools to hold `jobs` (resources pool perfectly up to
/// headroom; stranding is only sled-granularity rounding).
DisaggResult pack_disaggregated(std::span<const ResourceVector> jobs,
                                const DisaggParams& params = {});

struct UpgradeTcoParams {
  int horizon_years = 6;
  int cpu_refresh_years = 2;      // CPUs age fastest (roadmap's premise)
  int mem_refresh_years = 4;
  int storage_refresh_years = 6;
  // Demand grows; fleets are resized at each refresh point.
  double annual_demand_growth = 0.20;
};

struct UpgradeTco {
  std::vector<sim::Dollars> converged_capex_by_year;
  std::vector<sim::Dollars> disagg_capex_by_year;
  sim::Dollars converged_total = 0.0;
  sim::Dollars disagg_total = 0.0;
};

/// Rolling-upgrade TCO: converged fleets replace whole servers on the CPU
/// refresh cadence; composable fleets replace each sled class on its own
/// cadence. Both grow capacity with demand.
UpgradeTco simulate_upgrades(std::span<const ResourceVector> initial_jobs,
                             const ServerShape& shape,
                             const DisaggParams& disagg,
                             const UpgradeTcoParams& params = {});

}  // namespace rb::net

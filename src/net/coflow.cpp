#include "net/coflow.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace rb::net {

sim::Bytes Coflow::total_bytes() const noexcept {
  sim::Bytes total = 0;
  for (const auto& f : flows) total += f.bytes;
  return total;
}

std::string to_string(CoflowSchedule schedule) {
  switch (schedule) {
    case CoflowSchedule::kConcurrentFairSharing:
      return "concurrent-fair";
    case CoflowSchedule::kSmallestBottleneckFirst:
      return "smallest-bottleneck-first";
  }
  return "?";
}

double bottleneck_seconds(const Topology& topo, const Coflow& coflow) {
  // Bytes in and out of every host, over its access-link rate.
  std::unordered_map<NodeId, double> out_bytes, in_bytes;
  for (const auto& f : coflow.flows) {
    out_bytes[f.src] += static_cast<double>(f.bytes);
    in_bytes[f.dst] += static_cast<double>(f.bytes);
  }
  const auto access_rate = [&topo](NodeId host) {
    const auto& adj = topo.adjacency(host);
    if (adj.empty())
      throw std::invalid_argument{"bottleneck_seconds: isolated host"};
    return topo.link(adj.front().second).rate;
  };
  double bottleneck = 0.0;
  for (const auto& [host, bytes] : out_bytes) {
    bottleneck = std::max(bottleneck, bytes * 8.0 / access_rate(host));
  }
  for (const auto& [host, bytes] : in_bytes) {
    bottleneck = std::max(bottleneck, bytes * 8.0 / access_rate(host));
  }
  return bottleneck;
}

CoflowResult run_coflows(const Topology& topo,
                         const std::vector<Coflow>& coflows,
                         CoflowSchedule schedule) {
  if (coflows.empty())
    throw std::invalid_argument{"run_coflows: no coflows"};
  for (const auto& c : coflows) {
    if (c.flows.empty())
      throw std::invalid_argument{"run_coflows: empty coflow " + c.name};
  }

  CoflowResult result;
  const Router router{topo};

  if (schedule == CoflowSchedule::kConcurrentFairSharing) {
    sim::Simulator sim;
    FlowSimulator fabric{sim, topo, router};
    std::vector<sim::SimTime> finish(coflows.size(), 0);
    std::vector<std::size_t> remaining(coflows.size(), 0);
    for (std::size_t c = 0; c < coflows.size(); ++c) {
      remaining[c] = coflows[c].flows.size();
      for (const auto& f : coflows[c].flows) {
        fabric.start_flow(f.src, f.dst, f.bytes,
                          [&, c](const FlowRecord& record) {
                            finish[c] = std::max(finish[c], record.finish);
                          });
      }
    }
    sim.run();
    for (std::size_t c = 0; c < coflows.size(); ++c) {
      result.cct_seconds.emplace_back(coflows[c].name,
                                      sim::to_seconds(finish[c]));
    }
  } else {
    // SEBF: run one coflow at a time, smallest standalone bottleneck first.
    std::vector<std::size_t> order(coflows.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<double> bottlenecks(coflows.size());
    for (std::size_t c = 0; c < coflows.size(); ++c) {
      bottlenecks[c] = bottleneck_seconds(topo, coflows[c]);
    }
    std::sort(order.begin(), order.end(),
              [&bottlenecks](std::size_t a, std::size_t b) {
                return bottlenecks[a] != bottlenecks[b]
                           ? bottlenecks[a] < bottlenecks[b]
                           : a < b;
              });
    result.cct_seconds.resize(coflows.size());
    double clock = 0.0;
    for (const auto c : order) {
      sim::Simulator sim;
      FlowSimulator fabric{sim, topo, router};
      sim::SimTime finish = 0;
      for (const auto& f : coflows[c].flows) {
        fabric.start_flow(f.src, f.dst, f.bytes,
                          [&finish](const FlowRecord& record) {
                            finish = std::max(finish, record.finish);
                          });
      }
      sim.run();
      clock += sim::to_seconds(finish);
      result.cct_seconds[c] = {coflows[c].name, clock};
    }
    // Keep declaration order in the report.
  }

  for (const auto& [name, cct] : result.cct_seconds) {
    result.avg_cct_seconds += cct;
    result.makespan_seconds = std::max(result.makespan_seconds, cct);
  }
  result.avg_cct_seconds /= static_cast<double>(result.cct_seconds.size());
  return result;
}

}  // namespace rb::net

#pragma once
// Flow-level datacenter fabric simulation.
//
// Flows are fluid: each active flow receives a rate from a max-min fair
// allocation across the directed capacities of the links on its ECMP path
// (progressive filling / water-filling). The allocation is recomputed on
// every flow arrival and departure, which is the standard abstraction for
// studying DC job/network interactions at the scale the roadmap discusses
// without simulating packets.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace rb::net {

using FlowId = std::uint64_t;

struct FlowRecord {
  FlowId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  sim::Bytes size = 0;
  sim::SimTime start = 0;
  sim::SimTime finish = 0;
};

using FlowCallback = std::function<void(const FlowRecord&)>;

/// Bandwidth-sharing discipline (the DESIGN.md ablation): max-min fair via
/// progressive filling, or the naive per-link equal split, which gives every
/// flow min over its links of capacity/flows-on-link — feasible but leaves
/// bandwidth stranded whenever flows are bottlenecked elsewhere.
enum class RateAllocation : std::uint8_t { kMaxMinFair, kEqualSharePerLink };

class FlowSimulator {
 public:
  /// The topology and router must outlive the simulator.
  FlowSimulator(sim::Simulator& sim, const Topology& topo,
                const Router& router,
                RateAllocation allocation = RateAllocation::kMaxMinFair);

  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;

  /// Start a flow of `size` bytes now. `on_complete` (optional) fires at the
  /// flow's finish time. Zero-byte flows and src==dst complete immediately
  /// (after path propagation latency).
  FlowId start_flow(NodeId src, NodeId dst, sim::Bytes size,
                    FlowCallback on_complete = {});

  std::size_t active_flows() const noexcept { return flows_.size(); }
  std::uint64_t completed_flows() const noexcept { return completed_; }

  /// Current max-min rate of an active flow (bits/s); throws if unknown.
  double current_rate(FlowId id) const;

  /// Flow completion times (seconds) of all completed flows.
  const sim::PercentileTracker& fct_seconds() const noexcept { return fct_; }

 private:
  struct Active {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    sim::Bytes size = 0;
    double remaining_bits = 0.0;
    double rate = 0.0;  // bits/s
    sim::SimTime start = 0;
    sim::SimTime latency = 0;  // total path propagation, added to completion
    std::vector<std::uint64_t> dpath;  // directed link keys
    FlowCallback on_complete;
  };

  void advance_to_now();
  void reallocate();
  void schedule_next_completion();
  void handle_completion_event();
  void finish_flow(FlowId id, Active&& flow);

  sim::Simulator* sim_;
  const Topology* topo_;
  const Router* router_;
  RateAllocation allocation_;
  std::unordered_map<FlowId, Active> flows_;
  FlowId next_id_ = 1;
  sim::SimTime last_advance_ = 0;
  sim::EventHandle completion_event_;
  std::uint64_t completed_ = 0;
  sim::PercentileTracker fct_;
};

/// Run an all-to-all shuffle of `bytes_per_pair` between every ordered pair
/// of distinct hosts; returns the makespan (time until the last flow
/// finishes). Used to study Ethernet-generation scaling (experiment E3) and
/// the rate-allocation ablation.
sim::SimTime simulate_shuffle(
    const Topology& topo, sim::Bytes bytes_per_pair,
    RateAllocation allocation = RateAllocation::kMaxMinFair);

}  // namespace rb::net

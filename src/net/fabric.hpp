#pragma once
// Flow-level datacenter fabric simulation.
//
// Flows are fluid: each active flow receives a rate from a max-min fair
// allocation across the directed capacities of the links on its ECMP path
// (progressive filling / water-filling). The allocation is recomputed when
// the active flow set changes, which is the standard abstraction for
// studying DC job/network interactions at the scale the roadmap discusses
// without simulating packets.
//
// Fast path (see DESIGN.md "Bandwidth allocator fast path"): flow state
// lives in a flat slot arena recycled through a free list, per-directed-link
// state is a dense vector indexed by directed-link index (link_id * 2 + dir),
// and every directed link keeps the list of flows crossing it so the solver
// freeze step only touches flows on bottleneck links. Arrivals, departures
// and reroutes that land on the same simulation timestamp are coalesced into
// a single reallocation via a zero-delay "realloc pending" event; synchronous
// queries (current_rate) force the pending solve so callers never observe a
// stale rate. RateAllocation::kMaxMinIncremental additionally re-solves only
// the flow/link component(s) reachable from the links whose membership
// changed, falling back to a full solve when the dirty component grows past
// a fixed fraction of the active flows.
//
// Failures: when the topology's fault state changes (links/switches/hosts
// going down or coming back), call handle_topology_change(). Every active
// flow whose path crosses a dead component is rerouted onto a surviving
// ECMP path if one exists; if the endpoints are disconnected the flow ends
// with FlowOutcome::kFailed — it never hangs and never silently completes.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace rb::net {

using FlowId = std::uint64_t;

/// How a flow ended. kFailed means a component failure disconnected the
/// endpoints mid-flight and no alternate path existed.
enum class FlowOutcome : std::uint8_t { kCompleted, kFailed };

struct FlowRecord {
  FlowId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  sim::Bytes size = 0;
  sim::SimTime start = 0;
  sim::SimTime finish = 0;
  FlowOutcome outcome = FlowOutcome::kCompleted;
  /// Bytes actually delivered (== size when completed, partial when failed).
  sim::Bytes bytes_delivered = 0;
};

using FlowCallback = std::function<void(const FlowRecord&)>;

/// Bandwidth-sharing discipline (the DESIGN.md ablation):
///  - kMaxMinFair: max-min via progressive filling, full solve per epoch.
///  - kMaxMinIncremental: same allocation, but single-event changes re-solve
///    only the affected flow/link component (exact within FP rounding of the
///    full solve; falls back to a full solve on large dirty sets).
///  - kEqualSharePerLink: naive per-link equal split — every flow gets
///    min over its links of capacity/flows-on-link; feasible but leaves
///    bandwidth stranded whenever flows are bottlenecked elsewhere.
enum class RateAllocation : std::uint8_t {
  kMaxMinFair,
  kEqualSharePerLink,
  kMaxMinIncremental,
};

/// Allocator performance counters (all monotone), exposed so benches can
/// report reallocations/sec and solve-round telemetry.
struct AllocatorStats {
  std::uint64_t reallocations = 0;       ///< solver epochs actually run
  std::uint64_t full_solves = 0;         ///< epochs solved over all flows
  std::uint64_t incremental_solves = 0;  ///< epochs solved on a component
  std::uint64_t incremental_fallbacks = 0;  ///< dirty set too large → full
  std::uint64_t solve_rounds = 0;        ///< progressive-filling rounds total
  std::uint64_t coalesced_events = 0;    ///< realloc requests merged into a
                                         ///< pending same-timestamp epoch
};

class FlowSimulator {
 public:
  /// The topology and router must outlive the simulator.
  FlowSimulator(sim::Simulator& sim, const Topology& topo,
                const Router& router,
                RateAllocation allocation = RateAllocation::kMaxMinFair);

  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;
  ~FlowSimulator();

  /// Start a flow of `size` bytes now. `on_complete` (optional) fires at the
  /// flow's finish time (or failure time, with outcome kFailed). Zero-byte
  /// flows and src==dst complete immediately (after path propagation
  /// latency). Throws NoRouteError when the destination is unreachable at
  /// start time. When `parent` is an active causal context (and the
  /// RequestTracer is on), the flow's lifetime is additionally recorded as a
  /// kNetwork span under the caller's span tree.
  FlowId start_flow(NodeId src, NodeId dst, sim::Bytes size,
                    FlowCallback on_complete = {},
                    const obs::TraceContext& parent = {});

  /// Silently abandon an active flow (no callback, no outcome). Returns
  /// false if the flow is not active. Used when the consumer of the flow
  /// died (e.g. the scheduler killed the task that was fetching).
  bool cancel_flow(FlowId id);

  /// React to link/node up-down changes in the topology: reroute affected
  /// flows or fail them if disconnected. Call after every batch of
  /// Topology::set_*_up mutations. No-op when nothing relevant changed.
  void handle_topology_change();

  std::size_t active_flows() const noexcept { return active_count_; }
  std::uint64_t started_flows() const noexcept { return started_; }
  std::uint64_t completed_flows() const noexcept { return completed_; }
  std::uint64_t failed_flows() const noexcept { return failed_; }
  std::uint64_t cancelled_flows() const noexcept { return cancelled_; }
  /// Number of successful mid-flight path migrations (a flow surviving N
  /// distinct failures counts N times).
  std::uint64_t rerouted_flows() const noexcept { return rerouted_; }

  /// Current max-min rate of an active flow (bits/s); throws if unknown.
  /// Forces any pending coalesced reallocation so the rate is never stale.
  double current_rate(FlowId id) const;

  /// Allocator telemetry (reallocations, rounds, coalescing counters).
  const AllocatorStats& allocator_stats() const noexcept { return astats_; }

  /// Flow completion times (seconds) of all *completed* flows.
  const sim::PercentileTracker& fct_seconds() const noexcept { return fct_; }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// One hop of a flow's directed path plus the flow's position in that
  /// directed link's membership list (for O(1) swap-removal).
  struct PathHop {
    std::uint32_t dlink = 0;  ///< directed link index: link_id * 2 + dir
    std::uint32_t pos = 0;    ///< index of this flow in DirLink::flows
  };

  /// Dense flow arena slot. `id == 0` marks a free slot (FlowIds start at 1).
  struct FlowSlot {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    sim::Bytes size = 0;
    double remaining_bits = 0.0;
    double rate = 0.0;  // bits/s
    sim::SimTime start = 0;
    sim::SimTime latency = 0;  // total path propagation, added to completion
    FlowId id = 0;
    std::uint32_t next_free = kNoSlot;  // free-list link while the slot is free
    bool frozen = false;       // progressive-filling scratch (per-slot flag)
    std::uint64_t visit = 0;   // dirty-component BFS stamp
    std::vector<PathHop> path;
    FlowCallback on_complete;
    /// Causal span for the flow's lifetime (trace_id 0 = untraced).
    obs::TraceContext causal;
  };

  /// Entry in a directed link's flow-membership list; `hop` is the index of
  /// this link inside the flow's path (so removals can back-patch the moved
  /// entry's PathHop::pos).
  struct LinkEntry {
    std::uint32_t slot = kNoSlot;
    std::uint32_t hop = 0;
  };

  /// Per-directed-link state, indexed by directed link index. Scratch fields
  /// are epoch-stamped so solves never pay an O(links) clear.
  struct DirLink {
    std::vector<LinkEntry> flows;  ///< active flows crossing this direction
    double remaining_cap = 0.0;    ///< solver scratch
    std::int32_t unfrozen = 0;     ///< solver scratch
    std::uint64_t inited = 0;      ///< solve-epoch stamp for scratch validity
    std::uint64_t visit = 0;       ///< dirty-component BFS stamp
    std::uint64_t dirty = 0;       ///< dirty-set membership stamp
  };

  // --- arena plumbing ---
  void ensure_dlinks();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void link_flow(std::uint32_t idx);
  void unlink_flow(std::uint32_t idx);
  void mark_path_dirty(const std::vector<PathHop>& path);

  /// Resolve src→dst into directed-link hops; throws NoRouteError.
  void build_path(FlowId id, NodeId src, NodeId dst,
                  std::vector<PathHop>& path, sim::SimTime& latency) const;
  bool path_is_live(const FlowSlot& flow) const;
  void advance_to_now();

  // --- coalesced reallocation ---
  /// Mark the allocation stale and arm a zero-delay solve event (at most one
  /// per timestamp). Same-timestamp requests coalesce into that epoch.
  void request_realloc();
  /// Run the pending epoch now (advance, solve, reschedule completion).
  void flush_realloc();
  void solve();
  bool try_solve_incremental();
  void solve_subset(const std::vector<std::uint32_t>& subset);
  void solve_equal_share();
  /// Per-directed-link utilization gauges (allocated/capacity) for the links
  /// touched by the last solve; only called when obs::enabled().
  void update_link_gauges();

  void schedule_next_completion();
  void handle_completion_event();
  void finish_flow(std::uint32_t idx);
  void fail_flow(std::uint32_t idx);

  sim::Simulator* sim_;
  const Topology* topo_;
  const Router* router_;
  RateAllocation allocation_;

  std::vector<FlowSlot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t active_count_ = 0;
  std::vector<DirLink> dlinks_;
  /// FlowId → slot; consulted only on the API boundary (cancel/current_rate),
  /// never inside the solver loops.
  std::unordered_map<FlowId, std::uint32_t> id_to_slot_;

  // Dirty-set accumulator for kMaxMinIncremental (stamp-deduped).
  std::vector<std::uint32_t> dirty_links_;
  std::uint64_t dirty_epoch_ = 1;

  bool realloc_pending_ = false;
  sim::EventHandle realloc_event_;
  std::uint64_t solve_epoch_ = 0;
  std::uint64_t visit_epoch_ = 0;
  // Reusable solver scratch (kept hot across epochs, never shrunk).
  std::vector<std::uint32_t> active_links_;
  std::vector<std::uint32_t> subset_slots_;
  std::vector<std::uint32_t> bfs_stack_;
  std::vector<std::uint32_t> gauge_links_;
  std::vector<PathHop> path_scratch_;

  FlowId next_id_ = 1;
  sim::SimTime last_advance_ = 0;
  sim::EventHandle completion_event_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t rerouted_ = 0;
  AllocatorStats astats_;
  sim::PercentileTracker fct_;
  /// Cached obs gauges keyed by directed link index; populated lazily and
  /// only while obs::enabled(), so unobserved runs never touch the registry.
  std::unordered_map<std::uint32_t, obs::Gauge*> link_util_gauges_;
};

/// Run an all-to-all shuffle of `bytes_per_pair` between every ordered pair
/// of distinct hosts; returns the makespan (time until the last flow
/// finishes). All H×(H−1) flows start under a single coalesced reallocation
/// epoch. Used to study Ethernet-generation scaling (experiment E3) and the
/// rate-allocation ablation.
sim::SimTime simulate_shuffle(
    const Topology& topo, sim::Bytes bytes_per_pair,
    RateAllocation allocation = RateAllocation::kMaxMinFair);

}  // namespace rb::net

#pragma once
// Flow-level datacenter fabric simulation.
//
// Flows are fluid: each active flow receives a rate from a max-min fair
// allocation across the directed capacities of the links on its ECMP path
// (progressive filling / water-filling). The allocation is recomputed on
// every flow arrival and departure, which is the standard abstraction for
// studying DC job/network interactions at the scale the roadmap discusses
// without simulating packets.
//
// Failures: when the topology's fault state changes (links/switches/hosts
// going down or coming back), call handle_topology_change(). Every active
// flow whose path crosses a dead component is rerouted onto a surviving
// ECMP path if one exists; if the endpoints are disconnected the flow ends
// with FlowOutcome::kFailed — it never hangs and never silently completes.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace rb::net {

using FlowId = std::uint64_t;

/// How a flow ended. kFailed means a component failure disconnected the
/// endpoints mid-flight and no alternate path existed.
enum class FlowOutcome : std::uint8_t { kCompleted, kFailed };

struct FlowRecord {
  FlowId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  sim::Bytes size = 0;
  sim::SimTime start = 0;
  sim::SimTime finish = 0;
  FlowOutcome outcome = FlowOutcome::kCompleted;
  /// Bytes actually delivered (== size when completed, partial when failed).
  sim::Bytes bytes_delivered = 0;
};

using FlowCallback = std::function<void(const FlowRecord&)>;

/// Bandwidth-sharing discipline (the DESIGN.md ablation): max-min fair via
/// progressive filling, or the naive per-link equal split, which gives every
/// flow min over its links of capacity/flows-on-link — feasible but leaves
/// bandwidth stranded whenever flows are bottlenecked elsewhere.
enum class RateAllocation : std::uint8_t { kMaxMinFair, kEqualSharePerLink };

class FlowSimulator {
 public:
  /// The topology and router must outlive the simulator.
  FlowSimulator(sim::Simulator& sim, const Topology& topo,
                const Router& router,
                RateAllocation allocation = RateAllocation::kMaxMinFair);

  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;

  /// Start a flow of `size` bytes now. `on_complete` (optional) fires at the
  /// flow's finish time (or failure time, with outcome kFailed). Zero-byte
  /// flows and src==dst complete immediately (after path propagation
  /// latency). Throws NoRouteError when the destination is unreachable at
  /// start time.
  FlowId start_flow(NodeId src, NodeId dst, sim::Bytes size,
                    FlowCallback on_complete = {});

  /// Silently abandon an active flow (no callback, no outcome). Returns
  /// false if the flow is not active. Used when the consumer of the flow
  /// died (e.g. the scheduler killed the task that was fetching).
  bool cancel_flow(FlowId id);

  /// React to link/node up-down changes in the topology: reroute affected
  /// flows or fail them if disconnected. Call after every batch of
  /// Topology::set_*_up mutations. No-op when nothing relevant changed.
  void handle_topology_change();

  std::size_t active_flows() const noexcept { return flows_.size(); }
  std::uint64_t started_flows() const noexcept { return started_; }
  std::uint64_t completed_flows() const noexcept { return completed_; }
  std::uint64_t failed_flows() const noexcept { return failed_; }
  std::uint64_t cancelled_flows() const noexcept { return cancelled_; }
  /// Number of successful mid-flight path migrations (a flow surviving N
  /// distinct failures counts N times).
  std::uint64_t rerouted_flows() const noexcept { return rerouted_; }

  /// Current max-min rate of an active flow (bits/s); throws if unknown.
  double current_rate(FlowId id) const;

  /// Flow completion times (seconds) of all *completed* flows.
  const sim::PercentileTracker& fct_seconds() const noexcept { return fct_; }

 private:
  struct Active {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    sim::Bytes size = 0;
    double remaining_bits = 0.0;
    double rate = 0.0;  // bits/s
    sim::SimTime start = 0;
    sim::SimTime latency = 0;  // total path propagation, added to completion
    std::vector<std::uint64_t> dpath;  // directed link keys
    FlowCallback on_complete;
  };

  void build_path(FlowId id, Active& flow) const;  // throws NoRouteError
  bool path_is_live(const Active& flow) const;
  void advance_to_now();
  void reallocate();
  /// Per-directed-link utilization gauges (allocated/capacity), updated at
  /// the end of every max-min reallocation when obs::enabled().
  void update_link_gauges(
      const std::unordered_map<std::uint64_t, double>& allocated);
  void schedule_next_completion();
  void handle_completion_event();
  void finish_flow(FlowId id, Active&& flow);
  void fail_flow(FlowId id, Active&& flow);

  sim::Simulator* sim_;
  const Topology* topo_;
  const Router* router_;
  RateAllocation allocation_;
  std::unordered_map<FlowId, Active> flows_;
  FlowId next_id_ = 1;
  sim::SimTime last_advance_ = 0;
  sim::EventHandle completion_event_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t rerouted_ = 0;
  sim::PercentileTracker fct_;
  /// Cached obs gauges keyed by directed link key; populated lazily and only
  /// while obs::enabled(), so unobserved runs never touch the registry.
  std::unordered_map<std::uint64_t, obs::Gauge*> link_util_gauges_;
};

/// Run an all-to-all shuffle of `bytes_per_pair` between every ordered pair
/// of distinct hosts; returns the makespan (time until the last flow
/// finishes). Used to study Ethernet-generation scaling (experiment E3) and
/// the rate-allocation ablation.
sim::SimTime simulate_shuffle(
    const Topology& topo, sim::Bytes bytes_per_pair,
    RateAllocation allocation = RateAllocation::kMaxMinFair);

}  // namespace rb::net

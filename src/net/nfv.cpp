#include "net/nfv.hpp"

#include <stdexcept>

namespace rb::net {

std::string to_string(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kFirewall: return "firewall";
    case FunctionKind::kNat: return "nat";
    case FunctionKind::kLoadBalancer: return "load-balancer";
    case FunctionKind::kDeepPacketInspection: return "dpi";
    case FunctionKind::kVpnEncrypt: return "vpn-encrypt";
  }
  return "?";
}

double software_cost_ns(FunctionKind kind) noexcept {
  switch (kind) {
    case FunctionKind::kFirewall: return 180.0;
    case FunctionKind::kNat: return 120.0;
    case FunctionKind::kLoadBalancer: return 150.0;
    case FunctionKind::kDeepPacketInspection: return 1400.0;
    case FunctionKind::kVpnEncrypt: return 900.0;
  }
  return 0.0;
}

Appliance appliance_of(FunctionKind kind) noexcept {
  // Fixed-function line-rate boxes (100GE-class, ~148 Mpps at 64 B).
  switch (kind) {
    case FunctionKind::kFirewall: return {148e6, 45'000.0};
    case FunctionKind::kNat: return {148e6, 30'000.0};
    case FunctionKind::kLoadBalancer: return {120e6, 55'000.0};
    case FunctionKind::kDeepPacketInspection: return {40e6, 120'000.0};
    case FunctionKind::kVpnEncrypt: return {60e6, 90'000.0};
  }
  return {0.0, 0.0};
}

ChainEvaluation evaluate_nfv_chain(const std::vector<FunctionKind>& chain,
                                   double offered_pps,
                                   const NfvServerParams& params) {
  if (chain.empty())
    throw std::invalid_argument{"evaluate_nfv_chain: empty chain"};
  if (offered_pps < 0.0)
    throw std::invalid_argument{"evaluate_nfv_chain: negative load"};

  double service_ns = 0.0;
  for (const auto fn : chain) service_ns += software_cost_ns(fn);

  ChainEvaluation out;
  out.capex = params.server_capex;
  out.max_throughput_pps =
      static_cast<double>(params.cores) * 1e9 / service_ns;
  out.utilization = offered_pps / out.max_throughput_pps;

  // M/M/c-like latency approximation: service time scaled by 1/(1 - rho).
  const double rho = std::min(out.utilization, 0.999);
  const double latency_ns = service_ns / (1.0 - rho);
  out.latency = static_cast<sim::SimTime>(latency_ns * sim::kNanosecond);
  return out;
}

ChainEvaluation evaluate_appliance_chain(const std::vector<FunctionKind>& chain,
                                         double offered_pps) {
  if (chain.empty())
    throw std::invalid_argument{"evaluate_appliance_chain: empty chain"};
  if (offered_pps < 0.0)
    throw std::invalid_argument{"evaluate_appliance_chain: negative load"};

  ChainEvaluation out;
  double min_pps = 0.0;
  bool first = true;
  for (const auto fn : chain) {
    const Appliance a = appliance_of(fn);
    out.capex += a.capex;
    min_pps = first ? a.packets_per_second
                    : std::min(min_pps, a.packets_per_second);
    first = false;
  }
  out.max_throughput_pps = min_pps;
  out.utilization = offered_pps / min_pps;
  // Fixed-function pipeline latency: ~2 us per hop, queueing-scaled.
  const double rho = std::min(out.utilization, 0.999);
  const double latency_ns =
      2000.0 * static_cast<double>(chain.size()) / (1.0 - rho);
  out.latency = static_cast<sim::SimTime>(latency_ns * sim::kNanosecond);
  return out;
}

}  // namespace rb::net

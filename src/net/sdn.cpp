#include "net/sdn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rb::net {

ReconfigOutcome apply_policy_change(ControlPlane plane, std::uint64_t switches,
                                    int network_diameter,
                                    const ControlPlaneParams& params) {
  if (switches == 0)
    throw std::invalid_argument{"apply_policy_change: no switches"};
  if (network_diameter < 1)
    throw std::invalid_argument{"apply_policy_change: diameter must be >= 1"};

  ReconfigOutcome out;
  const auto n = static_cast<double>(switches);
  switch (plane) {
    case ControlPlane::kDistributedPerSwitch: {
      out.admin_operations = n;
      // Humans work in parallel across boxes; convergence re-runs after the
      // last change propagates network_diameter rounds.
      const double batches = std::ceil(n / params.admin_parallelism);
      out.completion_time =
          static_cast<sim::SimTime>(batches) * params.per_switch_config_time +
          static_cast<sim::SimTime>(network_diameter) *
              params.convergence_round;
      out.error_probability = 1.0 - std::pow(1.0 - params.per_op_error_prob, n);
      break;
    }
    case ControlPlane::kSdnCentral: {
      out.admin_operations = 1.0;
      const double rules = n * params.rules_per_switch;
      const double install_seconds = rules / params.controller_rule_rate;
      out.completion_time = params.policy_compile_time +
                            sim::from_seconds(install_seconds) +
                            params.rule_install_rtt;
      out.error_probability = params.controller_error_prob;
      break;
    }
  }
  return out;
}

}  // namespace rb::net

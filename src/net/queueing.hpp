#pragma once
// Packet-level output-port queue model (Rec 3: "anticipate the changes in
// Data Center design for 400Gb Ethernet networks ... novel Data Center
// interconnect designs required at 400Gb operation").
//
// One switch output port: packets arrive as a Markov-modulated (on/off
// bursty) Poisson process, drain at line rate, queue in a finite buffer
// with optional ECN marking. The flow-level fabric model deliberately
// abstracts this away; this model answers the questions it cannot — how
// queueing delay, loss and marking respond to line rate, buffer depth and
// burstiness — which is exactly what changes when a fabric jumps from
// 10/40G to 400G while buffers-per-port lag.

#include <cstdint>

#include "net/topology.hpp"
#include "sim/units.hpp"

namespace rb::net {

struct PortParams {
  sim::BitsPerSecond rate = 10e9;
  sim::Bytes buffer_bytes = 512 * 1024;  // shallow ToR-class buffer
  /// ECN marking threshold (0 disables marking).
  sim::Bytes ecn_threshold_bytes = 0;
  /// Mean packet size; sizes are bimodal (64B acks / 1500B MTU).
  sim::Bytes mtu_bytes = 1500;
  double small_packet_fraction = 0.3;
};

struct BurstyTraffic {
  /// Offered load as a fraction of line rate in (0, 1).
  double load = 0.6;
  /// Burstiness: inside a burst the instantaneous arrival rate is
  /// `burst_factor` x the average; 1.0 = plain Poisson.
  double burst_factor = 4.0;
  /// Mean packets per burst (geometric).
  double mean_burst_packets = 64.0;
  std::uint64_t packets = 200'000;
  std::uint64_t seed = 1;
};

struct PortResult {
  double mean_delay_us = 0.0;
  double p50_delay_us = 0.0;
  double p99_delay_us = 0.0;
  double p999_delay_us = 0.0;
  double drop_rate = 0.0;
  double ecn_mark_rate = 0.0;
  double utilization = 0.0;
  double max_queue_bytes = 0.0;
};

/// Simulate one port under the given traffic. Deterministic per seed.
/// Throws std::invalid_argument on non-physical parameters.
PortResult simulate_port(const PortParams& port, const BurstyTraffic& traffic);

/// Buffer depth (bytes) needed to keep drops below `target_drop_rate` at
/// the given traffic, found by doubling search over [16 KiB, 1 GiB].
sim::Bytes buffer_for_drop_target(PortParams port, BurstyTraffic traffic,
                                  double target_drop_rate);

}  // namespace rb::net

#pragma once
// Control-plane scaling models: SDN vs per-switch distributed management
// (Sec IV.A.2). Google's claim, quoted by the roadmap, is that SDN "can make
// 10,000 switches look like one" — i.e. management effort is O(1) in the
// number of switches while rule installation parallelises, whereas
// box-by-box operation costs O(N) administrator actions and compounds
// per-operation error probability.

#include <cstdint>

#include "sim/units.hpp"

namespace rb::net {

enum class ControlPlane : std::uint8_t { kDistributedPerSwitch, kSdnCentral };

struct ControlPlaneParams {
  // --- per-switch (traditional CLI / NETCONF box-by-box) ---
  sim::SimTime per_switch_config_time = 90 * sim::kSecond;  // admin action
  double per_op_error_prob = 0.003;  // fat-finger probability per manual op
  int admin_parallelism = 4;         // concurrent human operators
  // BGP-style convergence after each change: rounds x per-round delay.
  sim::SimTime convergence_round = 30 * sim::kSecond;

  // --- SDN ---
  sim::SimTime policy_compile_time = 2 * sim::kSecond;  // controller compute
  double rules_per_switch = 12.0;                       // avg rules touched
  double controller_rule_rate = 20'000.0;  // rule installs per second
  sim::SimTime rule_install_rtt = 5 * sim::kMillisecond;
  double controller_error_prob = 0.0005;  // one validated change, not N
};

/// Outcome of applying one network-wide policy change to `switches` devices.
struct ReconfigOutcome {
  double admin_operations = 0.0;  // human actions required
  sim::SimTime completion_time = 0;
  double error_probability = 0.0;  // P(at least one misconfiguration)
};

ReconfigOutcome apply_policy_change(ControlPlane plane, std::uint64_t switches,
                                    int network_diameter,
                                    const ControlPlaneParams& params = {});

}  // namespace rb::net

#include "net/disagg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rb::net {

namespace {

double safe_fraction(double unused, double provisioned) noexcept {
  return provisioned <= 0.0 ? 0.0 : unused / provisioned;
}

std::size_t sleds_needed(double demand, double per_sled, double headroom) {
  return static_cast<std::size_t>(
      std::ceil(demand * (1.0 + headroom) / per_sled));
}

}  // namespace

double PackingResult::stranded_cores() const noexcept {
  return safe_fraction(provisioned.cores - used.cores, provisioned.cores);
}
double PackingResult::stranded_mem() const noexcept {
  return safe_fraction(provisioned.mem_gib - used.mem_gib,
                       provisioned.mem_gib);
}
double PackingResult::stranded_storage() const noexcept {
  return safe_fraction(provisioned.storage_tib - used.storage_tib,
                       provisioned.storage_tib);
}

PackingResult pack_converged(std::span<const ResourceVector> jobs,
                             const ServerShape& shape) {
  for (const auto& job : jobs) {
    if (!job.fits_in(shape.capacity))
      throw std::invalid_argument{
          "pack_converged: job exceeds server capacity"};
  }
  // First-fit decreasing on the job's dominant share of the server shape.
  std::vector<ResourceVector> sorted{jobs.begin(), jobs.end()};
  const auto dominant = [&shape](const ResourceVector& j) {
    return std::max({j.cores / shape.capacity.cores,
                     j.mem_gib / shape.capacity.mem_gib,
                     j.storage_tib / shape.capacity.storage_tib});
  };
  std::sort(sorted.begin(), sorted.end(),
            [&](const ResourceVector& a, const ResourceVector& b) {
              return dominant(a) > dominant(b);
            });

  std::vector<ResourceVector> residual;  // free space per open server
  PackingResult out;
  for (const auto& job : sorted) {
    bool placed = false;
    for (auto& free : residual) {
      if (job.fits_in(free)) {
        free.cores -= job.cores;
        free.mem_gib -= job.mem_gib;
        free.storage_tib -= job.storage_tib;
        placed = true;
        break;
      }
    }
    if (!placed) {
      ResourceVector free = shape.capacity;
      free.cores -= job.cores;
      free.mem_gib -= job.mem_gib;
      free.storage_tib -= job.storage_tib;
      residual.push_back(free);
    }
    out.used += job;
  }
  out.servers = residual.size();
  out.provisioned.cores =
      shape.capacity.cores * static_cast<double>(out.servers);
  out.provisioned.mem_gib =
      shape.capacity.mem_gib * static_cast<double>(out.servers);
  out.provisioned.storage_tib =
      shape.capacity.storage_tib * static_cast<double>(out.servers);
  return out;
}

DisaggResult pack_disaggregated(std::span<const ResourceVector> jobs,
                                const DisaggParams& params) {
  DisaggResult out;
  for (const auto& job : jobs) out.used += job;
  out.cpu_sleds =
      sleds_needed(out.used.cores, params.cores_per_sled, params.headroom);
  out.mem_sleds =
      sleds_needed(out.used.mem_gib, params.mem_gib_per_sled, params.headroom);
  out.storage_sleds = sleds_needed(out.used.storage_tib,
                                   params.storage_tib_per_sled,
                                   params.headroom);
  out.provisioned.cores =
      static_cast<double>(out.cpu_sleds) * params.cores_per_sled;
  out.provisioned.mem_gib =
      static_cast<double>(out.mem_sleds) * params.mem_gib_per_sled;
  out.provisioned.storage_tib =
      static_cast<double>(out.storage_sleds) * params.storage_tib_per_sled;
  const auto total_sleds =
      static_cast<double>(out.cpu_sleds + out.mem_sleds + out.storage_sleds);
  out.capex = static_cast<double>(out.cpu_sleds) * params.cpu_sled_cost +
              static_cast<double>(out.mem_sleds) * params.mem_sled_cost +
              static_cast<double>(out.storage_sleds) *
                  params.storage_sled_cost +
              total_sleds * params.fabric_cost_per_sled;
  return out;
}

UpgradeTco simulate_upgrades(std::span<const ResourceVector> initial_jobs,
                             const ServerShape& shape,
                             const DisaggParams& disagg,
                             const UpgradeTcoParams& params) {
  if (params.horizon_years <= 0)
    throw std::invalid_argument{"simulate_upgrades: horizon must be positive"};
  if (params.cpu_refresh_years <= 0 || params.mem_refresh_years <= 0 ||
      params.storage_refresh_years <= 0)
    throw std::invalid_argument{"simulate_upgrades: refresh must be positive"};

  UpgradeTco out;
  out.converged_capex_by_year.assign(
      static_cast<std::size_t>(params.horizon_years), 0.0);
  out.disagg_capex_by_year.assign(
      static_cast<std::size_t>(params.horizon_years), 0.0);

  // Demand trajectory: compound growth adds more jobs of the same shapes
  // (replication, not inflation — individual jobs must keep fitting in one
  // server for the converged fleet to be packable at all).
  const auto demand_at = [&](int year) {
    const double scale = std::pow(1.0 + params.annual_demand_growth, year);
    const auto target = static_cast<std::size_t>(
        std::ceil(static_cast<double>(initial_jobs.size()) * scale));
    std::vector<ResourceVector> jobs;
    jobs.reserve(target);
    for (std::size_t i = 0; i < target; ++i) {
      jobs.push_back(initial_jobs[i % initial_jobs.size()]);
    }
    return jobs;
  };

  std::size_t converged_fleet = 0;
  std::size_t cpu_sleds = 0, mem_sleds = 0, storage_sleds = 0;

  for (int year = 0; year < params.horizon_years; ++year) {
    const auto jobs = demand_at(year);
    auto& conv_spend =
        out.converged_capex_by_year[static_cast<std::size_t>(year)];
    auto& dis_spend = out.disagg_capex_by_year[static_cast<std::size_t>(year)];

    // --- Converged fleet ---
    const auto packed = pack_converged(jobs, shape);
    const bool cpu_refresh = year > 0 && year % params.cpu_refresh_years == 0;
    if (cpu_refresh) {
      // Whole-server replacement: the CPU ages out but the box is monolithic.
      conv_spend +=
          static_cast<double>(converged_fleet) * shape.total_cost();
      converged_fleet = 0;
    }
    if (packed.servers > converged_fleet) {
      conv_spend += static_cast<double>(packed.servers - converged_fleet) *
                    shape.total_cost();
      converged_fleet = packed.servers;
    }

    // --- Composable fleet: each sled class on its own cadence ---
    const auto pools = pack_disaggregated(jobs, disagg);
    const auto refresh_class = [&](std::size_t& fleet, std::size_t needed,
                                   int cadence, sim::Dollars sled_cost) {
      if (year > 0 && year % cadence == 0) {
        dis_spend += static_cast<double>(fleet) *
                     (sled_cost + disagg.fabric_cost_per_sled * 0.0);
        fleet = 0;
      }
      if (needed > fleet) {
        dis_spend += static_cast<double>(needed - fleet) *
                     (sled_cost + disagg.fabric_cost_per_sled);
        fleet = needed;
      }
    };
    refresh_class(cpu_sleds, pools.cpu_sleds, params.cpu_refresh_years,
                  disagg.cpu_sled_cost);
    refresh_class(mem_sleds, pools.mem_sleds, params.mem_refresh_years,
                  disagg.mem_sled_cost);
    refresh_class(storage_sleds, pools.storage_sleds,
                  params.storage_refresh_years, disagg.storage_sled_cost);
  }

  for (const auto c : out.converged_capex_by_year) out.converged_total += c;
  for (const auto c : out.disagg_capex_by_year) out.disagg_total += c;
  return out;
}

}  // namespace rb::net

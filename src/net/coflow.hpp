#pragma once
// Coflow scheduling over the flow-level fabric.
//
// A "coflow" is the group of flows one computation stage emits (a shuffle);
// the job only advances when the whole group is done. The roadmap's
// networking sections argue for Big-Data-aware network software; coflow
// scheduling is the canonical instance: scheduling whole shuffles instead
// of individual flows cuts average *coflow* completion time (CCT)
// substantially. This module compares:
//   kConcurrentFairSharing — all coflows start at once, the fabric's
//       max-min sharing arbitrates (today's TCP-fair baseline);
//   kSmallestBottleneckFirst — coflows run one group at a time, shortest
//       estimated bottleneck first (Varys-style Smallest Effective
//       Bottleneck First, the informed schedule).

#include <cstdint>
#include <string>
#include <vector>

#include "net/fabric.hpp"

namespace rb::net {

struct CoflowFlow {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  sim::Bytes bytes = 0;
};

struct Coflow {
  std::string name;
  std::vector<CoflowFlow> flows;

  sim::Bytes total_bytes() const noexcept;
};

enum class CoflowSchedule : std::uint8_t {
  kConcurrentFairSharing,
  kSmallestBottleneckFirst,
};

std::string to_string(CoflowSchedule schedule);

struct CoflowResult {
  std::vector<std::pair<std::string, double>> cct_seconds;  // per coflow
  double avg_cct_seconds = 0.0;
  double makespan_seconds = 0.0;
};

/// Estimated standalone completion time of a coflow on an idle fabric: the
/// max over endpoints of (bytes through that endpoint / endpoint rate) —
/// the "effective bottleneck" that orders SEBF.
double bottleneck_seconds(const Topology& topo, const Coflow& coflow);

/// Run `coflows` under `schedule` and report completion times.
/// Throws std::invalid_argument on an empty coflow set or empty coflow.
CoflowResult run_coflows(const Topology& topo,
                         const std::vector<Coflow>& coflows,
                         CoflowSchedule schedule);

}  // namespace rb::net

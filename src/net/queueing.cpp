#include "net/queueing.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace rb::net {

PortResult simulate_port(const PortParams& port,
                         const BurstyTraffic& traffic) {
  if (port.rate <= 0.0)
    throw std::invalid_argument{"simulate_port: rate must be positive"};
  if (port.buffer_bytes == 0)
    throw std::invalid_argument{"simulate_port: zero buffer"};
  if (traffic.load <= 0.0 || traffic.load >= 1.0)
    throw std::invalid_argument{"simulate_port: load out of (0, 1)"};
  if (traffic.burst_factor < 1.0)
    throw std::invalid_argument{"simulate_port: burst_factor must be >= 1"};
  if (traffic.mean_burst_packets < 1.0)
    throw std::invalid_argument{"simulate_port: mean_burst_packets < 1"};

  sim::Rng rng{traffic.seed};
  sim::PercentileTracker delay_us;
  delay_us.reserve(traffic.packets);

  const double mean_packet_bytes =
      port.small_packet_fraction * 64.0 +
      (1.0 - port.small_packet_fraction) * static_cast<double>(port.mtu_bytes);
  const double avg_pps =
      traffic.load * port.rate / (mean_packet_bytes * 8.0);
  const double burst_pps = avg_pps * traffic.burst_factor;
  // On/off modulation: bursts at burst_pps; the off gap is sized so the
  // long-run average rate equals avg_pps.
  const double on_seconds = traffic.mean_burst_packets / burst_pps;
  const double cycle_seconds =
      traffic.mean_burst_packets / avg_pps;  // to hit the average
  const double off_seconds = std::max(0.0, cycle_seconds - on_seconds);

  double now_s = 0.0;            // arrival clock
  double drain_until_s = 0.0;    // when the queue empties at line rate
  double queued_bytes = 0.0;     // backlog (follows drain_until implicitly)
  std::uint64_t drops = 0, marks = 0;
  double max_queue = 0.0;
  double busy_seconds = 0.0;

  std::uint64_t sent = 0;
  while (sent < traffic.packets) {
    // One burst.
    const auto burst_len = std::max<std::uint64_t>(
        1, rng.poisson(traffic.mean_burst_packets));
    for (std::uint64_t p = 0; p < burst_len && sent < traffic.packets; ++p) {
      now_s += rng.exponential(1.0 / burst_pps);
      const double packet_bytes =
          rng.chance(port.small_packet_fraction)
              ? 64.0
              : static_cast<double>(port.mtu_bytes);

      // Queue state at this arrival.
      const double backlog_s = std::max(0.0, drain_until_s - now_s);
      queued_bytes = backlog_s * port.rate / 8.0;
      if (queued_bytes + packet_bytes >
          static_cast<double>(port.buffer_bytes)) {
        ++drops;
        ++sent;
        continue;
      }
      if (port.ecn_threshold_bytes != 0 &&
          queued_bytes > static_cast<double>(port.ecn_threshold_bytes)) {
        ++marks;
      }
      const double service_s = packet_bytes * 8.0 / port.rate;
      const double start_s = std::max(drain_until_s, now_s);
      drain_until_s = start_s + service_s;
      busy_seconds += service_s;
      max_queue = std::max(max_queue, queued_bytes + packet_bytes);
      delay_us.add((drain_until_s - now_s) * 1e6);
      ++sent;
    }
    // Off period (silence) between bursts.
    if (traffic.burst_factor > 1.0 && off_seconds > 0.0) {
      now_s += rng.exponential(off_seconds);
    }
  }

  PortResult out;
  if (!delay_us.empty()) {
    out.mean_delay_us = delay_us.mean();
    out.p50_delay_us = delay_us.p50();
    out.p99_delay_us = delay_us.p99();
    out.p999_delay_us = delay_us.p999();
  }
  out.drop_rate =
      static_cast<double>(drops) / static_cast<double>(traffic.packets);
  out.ecn_mark_rate =
      static_cast<double>(marks) / static_cast<double>(traffic.packets);
  out.utilization = now_s > 0.0 ? busy_seconds / now_s : 0.0;
  out.max_queue_bytes = max_queue;
  return out;
}

sim::Bytes buffer_for_drop_target(PortParams port, BurstyTraffic traffic,
                                  double target_drop_rate) {
  if (target_drop_rate <= 0.0 || target_drop_rate >= 1.0)
    throw std::invalid_argument{
        "buffer_for_drop_target: target out of (0, 1)"};
  for (sim::Bytes buffer = 16 * 1024; buffer <= sim::kGiB; buffer *= 2) {
    port.buffer_bytes = buffer;
    if (simulate_port(port, traffic).drop_rate <= target_drop_rate) {
      return buffer;
    }
  }
  return sim::kGiB;
}

}  // namespace rb::net

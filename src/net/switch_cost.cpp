#include "net/switch_cost.hpp"

namespace rb::net {

std::string to_string(ProcurementModel model) {
  switch (model) {
    case ProcurementModel::kVendorIntegrated: return "vendor-integrated";
    case ProcurementModel::kBareMetal: return "bare-metal";
    case ProcurementModel::kWhiteBox: return "white-box";
  }
  return "?";
}

NetworkCost network_cost(const Topology& topo, ProcurementModel model,
                         EthernetGen gen, const SwitchCostParams& params) {
  NetworkCost cost;
  cost.ports = topo.switch_ports();
  for (NodeId id = 0; id < topo.node_count(); ++id) {
    if (topo.node(id).kind != NodeKind::kHost) ++cost.switches;
  }

  const sim::Dollars commodity_hw =
      static_cast<double>(cost.ports) * port_cost(gen);
  const sim::Watts power = static_cast<double>(cost.ports) * port_power(gen);
  const sim::Dollars power_per_year =
      power / 1000.0 * sim::kHoursPerYear * params.dollars_per_kwh;

  switch (model) {
    case ProcurementModel::kVendorIntegrated:
      cost.capex = commodity_hw * params.vendor_premium;
      cost.opex_per_year =
          cost.capex * params.vendor_support_fraction + power_per_year;
      break;
    case ProcurementModel::kBareMetal:
      cost.capex = commodity_hw;
      cost.opex_per_year =
          static_cast<double>(cost.switches) *
              (params.nos_license_per_switch_per_year +
               params.third_party_support_per_switch) +
          power_per_year;
      break;
    case ProcurementModel::kWhiteBox:
      cost.capex = commodity_hw + static_cast<double>(cost.switches) *
                                      params.whitebox_preload_surcharge;
      cost.opex_per_year = static_cast<double>(cost.switches) *
                               params.third_party_support_per_switch +
                           power_per_year;
      break;
  }
  return cost;
}

}  // namespace rb::net

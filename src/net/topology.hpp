#pragma once
// Datacenter topology graph and standard builders (fat-tree, leaf-spine).
//
// Nodes are hosts or switches; links are full-duplex and modelled as a pair
// of independent directed capacities (flow-level simulation allocates each
// direction separately). Link rates use the Ethernet generations the roadmap
// discusses (10/40/100/400GbE, Secs IV.A.1 and IV.A.3).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace rb::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

enum class NodeKind : std::uint8_t {
  kHost,
  kEdgeSwitch,   // top-of-rack / leaf
  kAggSwitch,    // aggregation / spine
  kCoreSwitch,
  kResourcePool,  // disaggregated memory/storage pool endpoint
};

/// Ethernet generations from the roadmap's networking discussion.
enum class EthernetGen : std::uint8_t { k10G, k40G, k100G, k400G };

/// Line rate of a generation in bits/s.
sim::BitsPerSecond rate_of(EthernetGen gen) noexcept;

/// First year of broad availability (Sec IV.A.3: beyond-400GbE "after 2020").
int availability_year(EthernetGen gen) noexcept;

/// Rough per-port switch capex in USD (commodity pricing at introduction).
sim::Dollars port_cost(EthernetGen gen) noexcept;

/// Per-port power draw in watts.
sim::Watts port_power(EthernetGen gen) noexcept;

std::string to_string(EthernetGen gen);

struct NodeInfo {
  NodeKind kind = NodeKind::kHost;
  std::string name;
};

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  sim::BitsPerSecond rate = 0.0;
  sim::SimTime latency = 0;  // one-way propagation + forwarding latency
};

/// Undirected multigraph of nodes and links with O(1) adjacency lookup.
///
/// Every node and link carries an up/down state for fault injection (all up
/// by default; the state vectors are allocated only on the first state
/// change, so a topology that never fails pays nothing). `state_epoch()`
/// increments on every change, letting routers invalidate cached routes.
class Topology {
 public:
  NodeId add_node(NodeKind kind, std::string name);
  LinkId add_link(NodeId a, NodeId b, sim::BitsPerSecond rate,
                  sim::SimTime latency);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }

  const NodeInfo& node(NodeId id) const { return nodes_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }

  /// Neighbors of `id` as (peer node, connecting link) pairs.
  const std::vector<std::pair<NodeId, LinkId>>& adjacency(NodeId id) const {
    return adj_.at(id);
  }

  /// All node ids of a given kind.
  std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  /// Total switch port count (each link endpoint on a switch is one port).
  std::size_t switch_ports() const noexcept;

  /// --- Fault state ---

  /// Mark a node (host or switch) down or repaired. Throws on unknown id.
  void set_node_up(NodeId id, bool up);
  /// Mark a link down or repaired. Throws on unknown id.
  void set_link_up(LinkId id, bool up);

  bool node_up(NodeId id) const {
    return node_up_.empty() ? id < nodes_.size() : node_up_.at(id);
  }
  bool link_up(LinkId id) const {
    return link_up_.empty() ? id < links_.size() : link_up_.at(id);
  }

  /// A link carries traffic only if it and both endpoints are up.
  bool link_usable(LinkId id) const {
    if (!link_up(id)) return false;
    const Link& l = links_.at(id);
    return node_up(l.a) && node_up(l.b);
  }

  /// --- Gray-failure (degraded) state ---
  ///
  /// A component can be *slow* without being down: a flaky optic, an
  /// overheating NIC, a switch with a failing line card. A slowdown factor
  /// f >= 1 multiplies the component's latency and divides its effective
  /// bandwidth; 1.0 means healthy. Like up/down state, the vectors are
  /// materialized only on the first degradation, so healthy topologies pay
  /// nothing. Throws std::invalid_argument on unknown id or factor < 1.

  void set_node_slowdown(NodeId id, double factor);
  void set_link_slowdown(LinkId id, double factor);

  double node_slowdown(NodeId id) const {
    return node_slow_.empty() ? 1.0 : node_slow_.at(id);
  }
  double link_slowdown(LinkId id) const {
    return link_slow_.empty() ? 1.0 : link_slow_.at(id);
  }

  /// Combined factor traffic crossing link `id` experiences: the link's own
  /// slowdown times both endpoints' (a gray host or switch slows every link
  /// it touches).
  double effective_slowdown(LinkId id) const {
    if (node_slow_.empty() && link_slow_.empty()) return 1.0;
    const Link& l = links_.at(id);
    return link_slowdown(id) * node_slowdown(l.a) * node_slowdown(l.b);
  }

  /// Incremented on every set_node_up/set_link_up/set_*_slowdown that
  /// changes state.
  std::uint64_t state_epoch() const noexcept { return epoch_; }

  std::size_t down_nodes() const noexcept;
  std::size_t down_links() const noexcept;
  std::size_t degraded_nodes() const noexcept;
  std::size_t degraded_links() const noexcept;

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adj_;
  // Empty means "everything up"; materialized lazily on first fault.
  std::vector<bool> node_up_;
  std::vector<bool> link_up_;
  // Empty means "everything healthy"; materialized on first degradation.
  std::vector<double> node_slow_;
  std::vector<double> link_slow_;
  std::uint64_t epoch_ = 0;
};

/// Parameters shared by the topology builders.
struct FabricParams {
  EthernetGen host_gen = EthernetGen::k10G;    // host uplinks
  EthernetGen fabric_gen = EthernetGen::k40G;  // switch-to-switch links
  sim::SimTime link_latency = 500 * sim::kNanosecond;
};

/// k-ary fat-tree (Al-Fares): k pods, (k/2)^2 core switches, k/2 aggregation
/// and k/2 edge switches per pod, k/2 hosts per edge switch. Requires k even,
/// k >= 2. Hosts are named "h<i>".
Topology make_fat_tree(int k, const FabricParams& params = {});

/// Two-tier leaf-spine: every leaf connects to every spine.
Topology make_leaf_spine(int spines, int leaves, int hosts_per_leaf,
                         const FabricParams& params = {});

/// Single-switch star (baseline / unit tests).
Topology make_star(int hosts, const FabricParams& params = {});

/// Disaggregated rack (Sec IV.A.3's composable hardware): compute hosts and
/// resource pools (memory/storage sleds) hang off one rack switch; pools get
/// `pool_gen` links (pooled memory needs the fattest pipes in the rack —
/// 100/400GbE), hosts get `params.host_gen`. Pool nodes are named "pool<i>".
Topology make_disaggregated_rack(int hosts, int pools,
                                 EthernetGen pool_gen = EthernetGen::k100G,
                                 const FabricParams& params = {});

}  // namespace rb::net

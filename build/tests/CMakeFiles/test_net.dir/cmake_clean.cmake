file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_coflow.cpp.o"
  "CMakeFiles/test_net.dir/net/test_coflow.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_disagg.cpp.o"
  "CMakeFiles/test_net.dir/net/test_disagg.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_fabric.cpp.o"
  "CMakeFiles/test_net.dir/net/test_fabric.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_nfv.cpp.o"
  "CMakeFiles/test_net.dir/net/test_nfv.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_queueing.cpp.o"
  "CMakeFiles/test_net.dir/net/test_queueing.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_routing.cpp.o"
  "CMakeFiles/test_net.dir/net/test_routing.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_sdn.cpp.o"
  "CMakeFiles/test_net.dir/net/test_sdn.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_switch_cost.cpp.o"
  "CMakeFiles/test_net.dir/net/test_switch_cost.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_topology.cpp.o"
  "CMakeFiles/test_net.dir/net/test_topology.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

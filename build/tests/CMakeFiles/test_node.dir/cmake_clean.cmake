file(REMOVE_RECURSE
  "CMakeFiles/test_node.dir/node/test_device.cpp.o"
  "CMakeFiles/test_node.dir/node/test_device.cpp.o.d"
  "CMakeFiles/test_node.dir/node/test_energy.cpp.o"
  "CMakeFiles/test_node.dir/node/test_energy.cpp.o.d"
  "CMakeFiles/test_node.dir/node/test_integration.cpp.o"
  "CMakeFiles/test_node.dir/node/test_integration.cpp.o.d"
  "CMakeFiles/test_node.dir/node/test_memory.cpp.o"
  "CMakeFiles/test_node.dir/node/test_memory.cpp.o.d"
  "CMakeFiles/test_node.dir/node/test_roofline.cpp.o"
  "CMakeFiles/test_node.dir/node/test_roofline.cpp.o.d"
  "CMakeFiles/test_node.dir/node/test_tco.cpp.o"
  "CMakeFiles/test_node.dir/node/test_tco.cpp.o.d"
  "test_node"
  "test_node.pdb"
  "test_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_roadmap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_roadmap.dir/roadmap/test_adoption.cpp.o"
  "CMakeFiles/test_roadmap.dir/roadmap/test_adoption.cpp.o.d"
  "CMakeFiles/test_roadmap.dir/roadmap/test_funding.cpp.o"
  "CMakeFiles/test_roadmap.dir/roadmap/test_funding.cpp.o.d"
  "CMakeFiles/test_roadmap.dir/roadmap/test_market.cpp.o"
  "CMakeFiles/test_roadmap.dir/roadmap/test_market.cpp.o.d"
  "CMakeFiles/test_roadmap.dir/roadmap/test_registry.cpp.o"
  "CMakeFiles/test_roadmap.dir/roadmap/test_registry.cpp.o.d"
  "CMakeFiles/test_roadmap.dir/roadmap/test_report.cpp.o"
  "CMakeFiles/test_roadmap.dir/roadmap/test_report.cpp.o.d"
  "CMakeFiles/test_roadmap.dir/roadmap/test_scenario.cpp.o"
  "CMakeFiles/test_roadmap.dir/roadmap/test_scenario.cpp.o.d"
  "CMakeFiles/test_roadmap.dir/roadmap/test_survey.cpp.o"
  "CMakeFiles/test_roadmap.dir/roadmap/test_survey.cpp.o.d"
  "test_roadmap"
  "test_roadmap.pdb"
  "test_roadmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_accel.dir/accel/test_aggregate.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_aggregate.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_compression.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_compression.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_gemm.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_gemm.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_graph.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_graph.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_hash_join.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_hash_join.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_hash_table.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_hash_table.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_ml.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_ml.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_offload.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_offload.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_scan.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_scan.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_sort.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_sort.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_text.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_text.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_topk.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_topk.cpp.o.d"
  "test_accel"
  "test_accel.pdb"
  "test_accel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accel/test_aggregate.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_aggregate.cpp.o.d"
  "/root/repo/tests/accel/test_compression.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_compression.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_compression.cpp.o.d"
  "/root/repo/tests/accel/test_gemm.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_gemm.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_gemm.cpp.o.d"
  "/root/repo/tests/accel/test_graph.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_graph.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_graph.cpp.o.d"
  "/root/repo/tests/accel/test_hash_join.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_hash_join.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_hash_join.cpp.o.d"
  "/root/repo/tests/accel/test_hash_table.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_hash_table.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_hash_table.cpp.o.d"
  "/root/repo/tests/accel/test_ml.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_ml.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_ml.cpp.o.d"
  "/root/repo/tests/accel/test_offload.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_offload.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_offload.cpp.o.d"
  "/root/repo/tests/accel/test_scan.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_scan.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_scan.cpp.o.d"
  "/root/repo/tests/accel/test_sort.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_sort.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_sort.cpp.o.d"
  "/root/repo/tests/accel/test_text.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_text.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_text.cpp.o.d"
  "/root/repo/tests/accel/test_topk.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_topk.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadmap/CMakeFiles/rb_roadmap.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/rb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/rb_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/rb_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/rb_node.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/workloads/test_generators.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_generators.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_search_service.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_search_service.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_suite.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_suite.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_trace.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_trace.cpp.o.d"
  "test_workloads"
  "test_workloads.pdb"
  "test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

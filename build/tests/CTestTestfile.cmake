# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_query[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_roadmap[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")

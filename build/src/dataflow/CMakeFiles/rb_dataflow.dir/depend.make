# Empty dependencies file for rb_dataflow.
# This may be replaced when dependencies are built.

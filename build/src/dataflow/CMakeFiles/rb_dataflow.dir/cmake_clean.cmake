file(REMOVE_RECURSE
  "CMakeFiles/rb_dataflow.dir/plan.cpp.o"
  "CMakeFiles/rb_dataflow.dir/plan.cpp.o.d"
  "CMakeFiles/rb_dataflow.dir/streaming.cpp.o"
  "CMakeFiles/rb_dataflow.dir/streaming.cpp.o.d"
  "CMakeFiles/rb_dataflow.dir/threadpool.cpp.o"
  "CMakeFiles/rb_dataflow.dir/threadpool.cpp.o.d"
  "librb_dataflow.a"
  "librb_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/plan.cpp" "src/dataflow/CMakeFiles/rb_dataflow.dir/plan.cpp.o" "gcc" "src/dataflow/CMakeFiles/rb_dataflow.dir/plan.cpp.o.d"
  "/root/repo/src/dataflow/streaming.cpp" "src/dataflow/CMakeFiles/rb_dataflow.dir/streaming.cpp.o" "gcc" "src/dataflow/CMakeFiles/rb_dataflow.dir/streaming.cpp.o.d"
  "/root/repo/src/dataflow/threadpool.cpp" "src/dataflow/CMakeFiles/rb_dataflow.dir/threadpool.cpp.o" "gcc" "src/dataflow/CMakeFiles/rb_dataflow.dir/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/rb_node.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

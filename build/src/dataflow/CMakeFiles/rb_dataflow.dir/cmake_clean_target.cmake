file(REMOVE_RECURSE
  "librb_dataflow.a"
)

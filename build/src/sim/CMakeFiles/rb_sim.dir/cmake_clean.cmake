file(REMOVE_RECURSE
  "CMakeFiles/rb_sim.dir/event_queue.cpp.o"
  "CMakeFiles/rb_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/rb_sim.dir/log.cpp.o"
  "CMakeFiles/rb_sim.dir/log.cpp.o.d"
  "CMakeFiles/rb_sim.dir/random.cpp.o"
  "CMakeFiles/rb_sim.dir/random.cpp.o.d"
  "CMakeFiles/rb_sim.dir/simulator.cpp.o"
  "CMakeFiles/rb_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/rb_sim.dir/stats.cpp.o"
  "CMakeFiles/rb_sim.dir/stats.cpp.o.d"
  "librb_sim.a"
  "librb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

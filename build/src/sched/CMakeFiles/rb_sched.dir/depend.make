# Empty dependencies file for rb_sched.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cluster.cpp" "src/sched/CMakeFiles/rb_sched.dir/cluster.cpp.o" "gcc" "src/sched/CMakeFiles/rb_sched.dir/cluster.cpp.o.d"
  "/root/repo/src/sched/engine.cpp" "src/sched/CMakeFiles/rb_sched.dir/engine.cpp.o" "gcc" "src/sched/CMakeFiles/rb_sched.dir/engine.cpp.o.d"
  "/root/repo/src/sched/policies.cpp" "src/sched/CMakeFiles/rb_sched.dir/policies.cpp.o" "gcc" "src/sched/CMakeFiles/rb_sched.dir/policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/rb_node.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/rb_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

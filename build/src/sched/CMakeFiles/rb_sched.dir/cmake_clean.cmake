file(REMOVE_RECURSE
  "CMakeFiles/rb_sched.dir/cluster.cpp.o"
  "CMakeFiles/rb_sched.dir/cluster.cpp.o.d"
  "CMakeFiles/rb_sched.dir/engine.cpp.o"
  "CMakeFiles/rb_sched.dir/engine.cpp.o.d"
  "CMakeFiles/rb_sched.dir/policies.cpp.o"
  "CMakeFiles/rb_sched.dir/policies.cpp.o.d"
  "librb_sched.a"
  "librb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librb_sched.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/aggregate.cpp" "src/accel/CMakeFiles/rb_accel.dir/aggregate.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/aggregate.cpp.o.d"
  "/root/repo/src/accel/compression.cpp" "src/accel/CMakeFiles/rb_accel.dir/compression.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/compression.cpp.o.d"
  "/root/repo/src/accel/gemm.cpp" "src/accel/CMakeFiles/rb_accel.dir/gemm.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/gemm.cpp.o.d"
  "/root/repo/src/accel/graph.cpp" "src/accel/CMakeFiles/rb_accel.dir/graph.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/graph.cpp.o.d"
  "/root/repo/src/accel/hash_join.cpp" "src/accel/CMakeFiles/rb_accel.dir/hash_join.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/hash_join.cpp.o.d"
  "/root/repo/src/accel/hash_table.cpp" "src/accel/CMakeFiles/rb_accel.dir/hash_table.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/hash_table.cpp.o.d"
  "/root/repo/src/accel/ml.cpp" "src/accel/CMakeFiles/rb_accel.dir/ml.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/ml.cpp.o.d"
  "/root/repo/src/accel/offload.cpp" "src/accel/CMakeFiles/rb_accel.dir/offload.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/offload.cpp.o.d"
  "/root/repo/src/accel/scan.cpp" "src/accel/CMakeFiles/rb_accel.dir/scan.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/scan.cpp.o.d"
  "/root/repo/src/accel/sort.cpp" "src/accel/CMakeFiles/rb_accel.dir/sort.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/sort.cpp.o.d"
  "/root/repo/src/accel/text.cpp" "src/accel/CMakeFiles/rb_accel.dir/text.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/text.cpp.o.d"
  "/root/repo/src/accel/topk.cpp" "src/accel/CMakeFiles/rb_accel.dir/topk.cpp.o" "gcc" "src/accel/CMakeFiles/rb_accel.dir/topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/rb_node.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/rb_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rb_accel.dir/aggregate.cpp.o"
  "CMakeFiles/rb_accel.dir/aggregate.cpp.o.d"
  "CMakeFiles/rb_accel.dir/compression.cpp.o"
  "CMakeFiles/rb_accel.dir/compression.cpp.o.d"
  "CMakeFiles/rb_accel.dir/gemm.cpp.o"
  "CMakeFiles/rb_accel.dir/gemm.cpp.o.d"
  "CMakeFiles/rb_accel.dir/graph.cpp.o"
  "CMakeFiles/rb_accel.dir/graph.cpp.o.d"
  "CMakeFiles/rb_accel.dir/hash_join.cpp.o"
  "CMakeFiles/rb_accel.dir/hash_join.cpp.o.d"
  "CMakeFiles/rb_accel.dir/hash_table.cpp.o"
  "CMakeFiles/rb_accel.dir/hash_table.cpp.o.d"
  "CMakeFiles/rb_accel.dir/ml.cpp.o"
  "CMakeFiles/rb_accel.dir/ml.cpp.o.d"
  "CMakeFiles/rb_accel.dir/offload.cpp.o"
  "CMakeFiles/rb_accel.dir/offload.cpp.o.d"
  "CMakeFiles/rb_accel.dir/scan.cpp.o"
  "CMakeFiles/rb_accel.dir/scan.cpp.o.d"
  "CMakeFiles/rb_accel.dir/sort.cpp.o"
  "CMakeFiles/rb_accel.dir/sort.cpp.o.d"
  "CMakeFiles/rb_accel.dir/text.cpp.o"
  "CMakeFiles/rb_accel.dir/text.cpp.o.d"
  "CMakeFiles/rb_accel.dir/topk.cpp.o"
  "CMakeFiles/rb_accel.dir/topk.cpp.o.d"
  "librb_accel.a"
  "librb_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rb_accel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librb_accel.a"
)

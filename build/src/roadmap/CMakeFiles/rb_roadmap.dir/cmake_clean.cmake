file(REMOVE_RECURSE
  "CMakeFiles/rb_roadmap.dir/adoption.cpp.o"
  "CMakeFiles/rb_roadmap.dir/adoption.cpp.o.d"
  "CMakeFiles/rb_roadmap.dir/funding.cpp.o"
  "CMakeFiles/rb_roadmap.dir/funding.cpp.o.d"
  "CMakeFiles/rb_roadmap.dir/market.cpp.o"
  "CMakeFiles/rb_roadmap.dir/market.cpp.o.d"
  "CMakeFiles/rb_roadmap.dir/registry.cpp.o"
  "CMakeFiles/rb_roadmap.dir/registry.cpp.o.d"
  "CMakeFiles/rb_roadmap.dir/report.cpp.o"
  "CMakeFiles/rb_roadmap.dir/report.cpp.o.d"
  "CMakeFiles/rb_roadmap.dir/scenario.cpp.o"
  "CMakeFiles/rb_roadmap.dir/scenario.cpp.o.d"
  "CMakeFiles/rb_roadmap.dir/survey.cpp.o"
  "CMakeFiles/rb_roadmap.dir/survey.cpp.o.d"
  "librb_roadmap.a"
  "librb_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

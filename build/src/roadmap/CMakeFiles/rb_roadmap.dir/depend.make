# Empty dependencies file for rb_roadmap.
# This may be replaced when dependencies are built.

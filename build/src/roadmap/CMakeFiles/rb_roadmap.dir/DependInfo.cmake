
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadmap/adoption.cpp" "src/roadmap/CMakeFiles/rb_roadmap.dir/adoption.cpp.o" "gcc" "src/roadmap/CMakeFiles/rb_roadmap.dir/adoption.cpp.o.d"
  "/root/repo/src/roadmap/funding.cpp" "src/roadmap/CMakeFiles/rb_roadmap.dir/funding.cpp.o" "gcc" "src/roadmap/CMakeFiles/rb_roadmap.dir/funding.cpp.o.d"
  "/root/repo/src/roadmap/market.cpp" "src/roadmap/CMakeFiles/rb_roadmap.dir/market.cpp.o" "gcc" "src/roadmap/CMakeFiles/rb_roadmap.dir/market.cpp.o.d"
  "/root/repo/src/roadmap/registry.cpp" "src/roadmap/CMakeFiles/rb_roadmap.dir/registry.cpp.o" "gcc" "src/roadmap/CMakeFiles/rb_roadmap.dir/registry.cpp.o.d"
  "/root/repo/src/roadmap/report.cpp" "src/roadmap/CMakeFiles/rb_roadmap.dir/report.cpp.o" "gcc" "src/roadmap/CMakeFiles/rb_roadmap.dir/report.cpp.o.d"
  "/root/repo/src/roadmap/scenario.cpp" "src/roadmap/CMakeFiles/rb_roadmap.dir/scenario.cpp.o" "gcc" "src/roadmap/CMakeFiles/rb_roadmap.dir/scenario.cpp.o.d"
  "/root/repo/src/roadmap/survey.cpp" "src/roadmap/CMakeFiles/rb_roadmap.dir/survey.cpp.o" "gcc" "src/roadmap/CMakeFiles/rb_roadmap.dir/survey.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/rb_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/rb_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/rb_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librb_roadmap.a"
)

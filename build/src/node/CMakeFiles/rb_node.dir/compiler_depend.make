# Empty compiler generated dependencies file for rb_node.
# This may be replaced when dependencies are built.

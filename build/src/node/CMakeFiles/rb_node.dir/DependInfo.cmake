
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/device.cpp" "src/node/CMakeFiles/rb_node.dir/device.cpp.o" "gcc" "src/node/CMakeFiles/rb_node.dir/device.cpp.o.d"
  "/root/repo/src/node/energy.cpp" "src/node/CMakeFiles/rb_node.dir/energy.cpp.o" "gcc" "src/node/CMakeFiles/rb_node.dir/energy.cpp.o.d"
  "/root/repo/src/node/integration.cpp" "src/node/CMakeFiles/rb_node.dir/integration.cpp.o" "gcc" "src/node/CMakeFiles/rb_node.dir/integration.cpp.o.d"
  "/root/repo/src/node/memory.cpp" "src/node/CMakeFiles/rb_node.dir/memory.cpp.o" "gcc" "src/node/CMakeFiles/rb_node.dir/memory.cpp.o.d"
  "/root/repo/src/node/roofline.cpp" "src/node/CMakeFiles/rb_node.dir/roofline.cpp.o" "gcc" "src/node/CMakeFiles/rb_node.dir/roofline.cpp.o.d"
  "/root/repo/src/node/tco.cpp" "src/node/CMakeFiles/rb_node.dir/tco.cpp.o" "gcc" "src/node/CMakeFiles/rb_node.dir/tco.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

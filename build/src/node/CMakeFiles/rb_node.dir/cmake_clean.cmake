file(REMOVE_RECURSE
  "CMakeFiles/rb_node.dir/device.cpp.o"
  "CMakeFiles/rb_node.dir/device.cpp.o.d"
  "CMakeFiles/rb_node.dir/energy.cpp.o"
  "CMakeFiles/rb_node.dir/energy.cpp.o.d"
  "CMakeFiles/rb_node.dir/integration.cpp.o"
  "CMakeFiles/rb_node.dir/integration.cpp.o.d"
  "CMakeFiles/rb_node.dir/memory.cpp.o"
  "CMakeFiles/rb_node.dir/memory.cpp.o.d"
  "CMakeFiles/rb_node.dir/roofline.cpp.o"
  "CMakeFiles/rb_node.dir/roofline.cpp.o.d"
  "CMakeFiles/rb_node.dir/tco.cpp.o"
  "CMakeFiles/rb_node.dir/tco.cpp.o.d"
  "librb_node.a"
  "librb_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

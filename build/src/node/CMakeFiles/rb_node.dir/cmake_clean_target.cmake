file(REMOVE_RECURSE
  "librb_node.a"
)

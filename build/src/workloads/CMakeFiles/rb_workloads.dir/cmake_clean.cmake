file(REMOVE_RECURSE
  "CMakeFiles/rb_workloads.dir/generators.cpp.o"
  "CMakeFiles/rb_workloads.dir/generators.cpp.o.d"
  "CMakeFiles/rb_workloads.dir/search_service.cpp.o"
  "CMakeFiles/rb_workloads.dir/search_service.cpp.o.d"
  "CMakeFiles/rb_workloads.dir/suite.cpp.o"
  "CMakeFiles/rb_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/rb_workloads.dir/trace.cpp.o"
  "CMakeFiles/rb_workloads.dir/trace.cpp.o.d"
  "librb_workloads.a"
  "librb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rb_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librb_workloads.a"
)

# Empty compiler generated dependencies file for rb_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librb_storage.a"
)

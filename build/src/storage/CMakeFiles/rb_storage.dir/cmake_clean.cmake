file(REMOVE_RECURSE
  "CMakeFiles/rb_storage.dir/lsm.cpp.o"
  "CMakeFiles/rb_storage.dir/lsm.cpp.o.d"
  "librb_storage.a"
  "librb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rb_net.dir/coflow.cpp.o"
  "CMakeFiles/rb_net.dir/coflow.cpp.o.d"
  "CMakeFiles/rb_net.dir/disagg.cpp.o"
  "CMakeFiles/rb_net.dir/disagg.cpp.o.d"
  "CMakeFiles/rb_net.dir/fabric.cpp.o"
  "CMakeFiles/rb_net.dir/fabric.cpp.o.d"
  "CMakeFiles/rb_net.dir/nfv.cpp.o"
  "CMakeFiles/rb_net.dir/nfv.cpp.o.d"
  "CMakeFiles/rb_net.dir/queueing.cpp.o"
  "CMakeFiles/rb_net.dir/queueing.cpp.o.d"
  "CMakeFiles/rb_net.dir/routing.cpp.o"
  "CMakeFiles/rb_net.dir/routing.cpp.o.d"
  "CMakeFiles/rb_net.dir/sdn.cpp.o"
  "CMakeFiles/rb_net.dir/sdn.cpp.o.d"
  "CMakeFiles/rb_net.dir/switch_cost.cpp.o"
  "CMakeFiles/rb_net.dir/switch_cost.cpp.o.d"
  "CMakeFiles/rb_net.dir/topology.cpp.o"
  "CMakeFiles/rb_net.dir/topology.cpp.o.d"
  "librb_net.a"
  "librb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/coflow.cpp" "src/net/CMakeFiles/rb_net.dir/coflow.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/coflow.cpp.o.d"
  "/root/repo/src/net/disagg.cpp" "src/net/CMakeFiles/rb_net.dir/disagg.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/disagg.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/rb_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/nfv.cpp" "src/net/CMakeFiles/rb_net.dir/nfv.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/nfv.cpp.o.d"
  "/root/repo/src/net/queueing.cpp" "src/net/CMakeFiles/rb_net.dir/queueing.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/queueing.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/rb_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/routing.cpp.o.d"
  "/root/repo/src/net/sdn.cpp" "src/net/CMakeFiles/rb_net.dir/sdn.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/sdn.cpp.o.d"
  "/root/repo/src/net/switch_cost.cpp" "src/net/CMakeFiles/rb_net.dir/switch_cost.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/switch_cost.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/rb_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/rb_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

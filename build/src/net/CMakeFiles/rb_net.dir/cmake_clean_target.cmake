file(REMOVE_RECURSE
  "librb_net.a"
)

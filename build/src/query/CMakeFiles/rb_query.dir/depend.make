# Empty dependencies file for rb_query.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librb_query.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rb_query.dir/table.cpp.o"
  "CMakeFiles/rb_query.dir/table.cpp.o.d"
  "librb_query.a"
  "librb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_e6_soc_vs_sip"
  "../bench/bench_e6_soc_vs_sip.pdb"
  "CMakeFiles/bench_e6_soc_vs_sip.dir/bench_e6_soc_vs_sip.cpp.o"
  "CMakeFiles/bench_e6_soc_vs_sip.dir/bench_e6_soc_vs_sip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_soc_vs_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_e6_soc_vs_sip.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_figure1_ecosystem"
  "../bench/bench_figure1_ecosystem.pdb"
  "CMakeFiles/bench_figure1_ecosystem.dir/bench_figure1_ecosystem.cpp.o"
  "CMakeFiles/bench_figure1_ecosystem.dir/bench_figure1_ecosystem.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_ecosystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

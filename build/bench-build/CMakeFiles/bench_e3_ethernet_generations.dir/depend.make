# Empty dependencies file for bench_e3_ethernet_generations.
# This may be replaced when dependencies are built.

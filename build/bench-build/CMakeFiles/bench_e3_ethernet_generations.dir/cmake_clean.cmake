file(REMOVE_RECURSE
  "../bench/bench_e3_ethernet_generations"
  "../bench/bench_e3_ethernet_generations.pdb"
  "CMakeFiles/bench_e3_ethernet_generations.dir/bench_e3_ethernet_generations.cpp.o"
  "CMakeFiles/bench_e3_ethernet_generations.dir/bench_e3_ethernet_generations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_ethernet_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e11_nfv_chains.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_e11_nfv_chains"
  "../bench/bench_e11_nfv_chains.pdb"
  "CMakeFiles/bench_e11_nfv_chains.dir/bench_e11_nfv_chains.cpp.o"
  "CMakeFiles/bench_e11_nfv_chains.dir/bench_e11_nfv_chains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_nfv_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

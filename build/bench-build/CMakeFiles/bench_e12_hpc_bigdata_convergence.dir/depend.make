# Empty dependencies file for bench_e12_hpc_bigdata_convergence.
# This may be replaced when dependencies are built.

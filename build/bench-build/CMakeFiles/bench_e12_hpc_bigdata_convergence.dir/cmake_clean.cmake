file(REMOVE_RECURSE
  "../bench/bench_e12_hpc_bigdata_convergence"
  "../bench/bench_e12_hpc_bigdata_convergence.pdb"
  "CMakeFiles/bench_e12_hpc_bigdata_convergence.dir/bench_e12_hpc_bigdata_convergence.cpp.o"
  "CMakeFiles/bench_e12_hpc_bigdata_convergence.dir/bench_e12_hpc_bigdata_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_hpc_bigdata_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

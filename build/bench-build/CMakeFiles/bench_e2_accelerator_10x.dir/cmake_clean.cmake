file(REMOVE_RECURSE
  "../bench/bench_e2_accelerator_10x"
  "../bench/bench_e2_accelerator_10x.pdb"
  "CMakeFiles/bench_e2_accelerator_10x.dir/bench_e2_accelerator_10x.cpp.o"
  "CMakeFiles/bench_e2_accelerator_10x.dir/bench_e2_accelerator_10x.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_accelerator_10x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

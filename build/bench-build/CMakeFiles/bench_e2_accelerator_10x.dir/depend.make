# Empty dependencies file for bench_e2_accelerator_10x.
# This may be replaced when dependencies are built.

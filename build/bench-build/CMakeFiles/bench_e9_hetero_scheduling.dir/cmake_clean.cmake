file(REMOVE_RECURSE
  "../bench/bench_e9_hetero_scheduling"
  "../bench/bench_e9_hetero_scheduling.pdb"
  "CMakeFiles/bench_e9_hetero_scheduling.dir/bench_e9_hetero_scheduling.cpp.o"
  "CMakeFiles/bench_e9_hetero_scheduling.dir/bench_e9_hetero_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_hetero_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

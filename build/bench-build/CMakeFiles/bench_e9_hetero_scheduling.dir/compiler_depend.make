# Empty compiler generated dependencies file for bench_e9_hetero_scheduling.
# This may be replaced when dependencies are built.

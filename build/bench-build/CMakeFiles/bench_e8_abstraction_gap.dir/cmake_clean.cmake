file(REMOVE_RECURSE
  "../bench/bench_e8_abstraction_gap"
  "../bench/bench_e8_abstraction_gap.pdb"
  "CMakeFiles/bench_e8_abstraction_gap.dir/bench_e8_abstraction_gap.cpp.o"
  "CMakeFiles/bench_e8_abstraction_gap.dir/bench_e8_abstraction_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_abstraction_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e8_abstraction_gap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ext_rec3_buffers"
  "../bench/bench_ext_rec3_buffers.pdb"
  "CMakeFiles/bench_ext_rec3_buffers.dir/bench_ext_rec3_buffers.cpp.o"
  "CMakeFiles/bench_ext_rec3_buffers.dir/bench_ext_rec3_buffers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rec3_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_rec3_buffers.cpp" "bench-build/CMakeFiles/bench_ext_rec3_buffers.dir/bench_ext_rec3_buffers.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ext_rec3_buffers.dir/bench_ext_rec3_buffers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadmap/CMakeFiles/rb_roadmap.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/rb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/rb_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/rb_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/rb_node.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

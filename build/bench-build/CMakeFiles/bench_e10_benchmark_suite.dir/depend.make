# Empty dependencies file for bench_e10_benchmark_suite.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_e10_benchmark_suite"
  "../bench/bench_e10_benchmark_suite.pdb"
  "CMakeFiles/bench_e10_benchmark_suite.dir/bench_e10_benchmark_suite.cpp.o"
  "CMakeFiles/bench_e10_benchmark_suite.dir/bench_e10_benchmark_suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_benchmark_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_e5_disaggregation.
# This may be replaced when dependencies are built.

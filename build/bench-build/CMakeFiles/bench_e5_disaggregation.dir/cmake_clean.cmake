file(REMOVE_RECURSE
  "../bench/bench_e5_disaggregation"
  "../bench/bench_e5_disaggregation.pdb"
  "CMakeFiles/bench_e5_disaggregation.dir/bench_e5_disaggregation.cpp.o"
  "CMakeFiles/bench_e5_disaggregation.dir/bench_e5_disaggregation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_disaggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

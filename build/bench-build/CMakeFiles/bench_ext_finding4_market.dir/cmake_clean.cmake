file(REMOVE_RECURSE
  "../bench/bench_ext_finding4_market"
  "../bench/bench_ext_finding4_market.pdb"
  "CMakeFiles/bench_ext_finding4_market.dir/bench_ext_finding4_market.cpp.o"
  "CMakeFiles/bench_ext_finding4_market.dir/bench_ext_finding4_market.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_finding4_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

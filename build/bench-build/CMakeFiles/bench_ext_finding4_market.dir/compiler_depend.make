# Empty compiler generated dependencies file for bench_ext_finding4_market.
# This may be replaced when dependencies are built.

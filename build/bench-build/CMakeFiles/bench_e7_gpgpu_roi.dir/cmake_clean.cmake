file(REMOVE_RECURSE
  "../bench/bench_e7_gpgpu_roi"
  "../bench/bench_e7_gpgpu_roi.pdb"
  "CMakeFiles/bench_e7_gpgpu_roi.dir/bench_e7_gpgpu_roi.cpp.o"
  "CMakeFiles/bench_e7_gpgpu_roi.dir/bench_e7_gpgpu_roi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_gpgpu_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e7_gpgpu_roi.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_micro_blocks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_micro_blocks"
  "../bench/bench_micro_blocks.pdb"
  "CMakeFiles/bench_micro_blocks.dir/bench_micro_blocks.cpp.o"
  "CMakeFiles/bench_micro_blocks.dir/bench_micro_blocks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_rec5_nvm.
# This may be replaced when dependencies are built.

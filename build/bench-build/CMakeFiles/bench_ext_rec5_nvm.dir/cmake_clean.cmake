file(REMOVE_RECURSE
  "../bench/bench_ext_rec5_nvm"
  "../bench/bench_ext_rec5_nvm.pdb"
  "CMakeFiles/bench_ext_rec5_nvm.dir/bench_ext_rec5_nvm.cpp.o"
  "CMakeFiles/bench_ext_rec5_nvm.dir/bench_ext_rec5_nvm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rec5_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

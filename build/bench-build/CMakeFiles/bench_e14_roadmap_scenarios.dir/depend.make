# Empty dependencies file for bench_e14_roadmap_scenarios.
# This may be replaced when dependencies are built.

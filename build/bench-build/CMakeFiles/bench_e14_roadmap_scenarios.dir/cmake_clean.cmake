file(REMOVE_RECURSE
  "../bench/bench_e14_roadmap_scenarios"
  "../bench/bench_e14_roadmap_scenarios.pdb"
  "CMakeFiles/bench_e14_roadmap_scenarios.dir/bench_e14_roadmap_scenarios.cpp.o"
  "CMakeFiles/bench_e14_roadmap_scenarios.dir/bench_e14_roadmap_scenarios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_roadmap_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table1_consortium.
# This may be replaced when dependencies are built.

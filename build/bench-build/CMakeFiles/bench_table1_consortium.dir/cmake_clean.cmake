file(REMOVE_RECURSE
  "../bench/bench_table1_consortium"
  "../bench/bench_table1_consortium.pdb"
  "CMakeFiles/bench_table1_consortium.dir/bench_table1_consortium.cpp.o"
  "CMakeFiles/bench_table1_consortium.dir/bench_table1_consortium.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_consortium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

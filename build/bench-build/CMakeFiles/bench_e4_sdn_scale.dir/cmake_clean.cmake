file(REMOVE_RECURSE
  "../bench/bench_e4_sdn_scale"
  "../bench/bench_e4_sdn_scale.pdb"
  "CMakeFiles/bench_e4_sdn_scale.dir/bench_e4_sdn_scale.cpp.o"
  "CMakeFiles/bench_e4_sdn_scale.dir/bench_e4_sdn_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_sdn_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_e13_survey_findings"
  "../bench/bench_e13_survey_findings.pdb"
  "CMakeFiles/bench_e13_survey_findings.dir/bench_e13_survey_findings.cpp.o"
  "CMakeFiles/bench_e13_survey_findings.dir/bench_e13_survey_findings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_survey_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e13_survey_findings.
# This may be replaced when dependencies are built.

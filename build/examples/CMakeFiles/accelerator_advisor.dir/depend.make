# Empty dependencies file for accelerator_advisor.
# This may be replaced when dependencies are built.

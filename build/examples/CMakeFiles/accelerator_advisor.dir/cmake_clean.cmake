file(REMOVE_RECURSE
  "CMakeFiles/accelerator_advisor.dir/accelerator_advisor.cpp.o"
  "CMakeFiles/accelerator_advisor.dir/accelerator_advisor.cpp.o.d"
  "accelerator_advisor"
  "accelerator_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for kv_store_tour.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for composable_datacenter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/composable_datacenter.dir/composable_datacenter.cpp.o"
  "CMakeFiles/composable_datacenter.dir/composable_datacenter.cpp.o.d"
  "composable_datacenter"
  "composable_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composable_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

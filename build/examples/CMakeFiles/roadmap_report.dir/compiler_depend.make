# Empty compiler generated dependencies file for roadmap_report.
# This may be replaced when dependencies are built.

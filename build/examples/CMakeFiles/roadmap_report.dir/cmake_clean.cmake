file(REMOVE_RECURSE
  "CMakeFiles/roadmap_report.dir/roadmap_report.cpp.o"
  "CMakeFiles/roadmap_report.dir/roadmap_report.cpp.o.d"
  "roadmap_report"
  "roadmap_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadmap_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sdn_fleet.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdn_fleet.dir/sdn_fleet.cpp.o"
  "CMakeFiles/sdn_fleet.dir/sdn_fleet.cpp.o.d"
  "sdn_fleet"
  "sdn_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

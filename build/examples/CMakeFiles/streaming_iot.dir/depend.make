# Empty dependencies file for streaming_iot.
# This may be replaced when dependencies are built.

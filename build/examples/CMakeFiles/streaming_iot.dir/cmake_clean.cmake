file(REMOVE_RECURSE
  "CMakeFiles/streaming_iot.dir/streaming_iot.cpp.o"
  "CMakeFiles/streaming_iot.dir/streaming_iot.cpp.o.d"
  "streaming_iot"
  "streaming_iot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_iot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// EXT-RESIL — the resilience control plane under correlated and gray
// failure. The serving plane's admission control (EXT-SERVE) protects one
// replica from overload; this bench measures the *cross-replica* failure
// modes the RETHINK-big reliability agenda worries about at datacenter
// scale, and the control-plane mechanisms that bound them:
//
//   Part 1 — correlated pod outage + retry storm. A fat-tree pod carrying
//   half the replica fleet goes dark mid-run. Per-attempt timeouts turn the
//   survivors' queueing delay into abandoned (zombie) attempts whose service
//   is pure waste, and unbudgeted retries then amplify offered load into a
//   metastable storm: goodput collapses below what the survivors could
//   serve. A retry budget (token bucket, retries <= ratio x issued + burst)
//   caps the amplification and keeps the fleet on the bounded-recovery path.
//
//   Part 2 — gray failure. One replica host is slowed 8x (it still answers;
//   membership and health checks never notice). Hedged requests duplicate a
//   straggling get to a different owner after the tracked p95 attempt
//   latency, cutting p999 for <= ~5% extra issued attempts; latency-EWMA
//   circuit breakers learn to route around the gray host entirely.
//
//   Part 3 — pure overload (2.5x capacity), as the control: admission
//   control sheds, goodput holds at capacity, and the breakers stay closed
//   (timeouts and rejections are *not* breaker evidence — a slow fleet is
//   not a broken replica).
//
// All runs are seeded and bit-deterministic; `--quick` shrinks horizons and
// asserts the headline claims (budget restores goodput; hedging cuts p999
// at bounded extra load; overload trips no breakers; the burn-rate alert
// fires during the pod outage and clears after repair; gray-failure p999 is
// service time on the degraded replica, not hedge wait) for CI. `--json`
// (or RB_BENCH_JSON) emits machine-readable telemetry, and `--trace <path>`
// (or RB_TRACE) exports the retained causal exemplar trees as Chrome trace
// JSON.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "faults/domains.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "node/device.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"
#include "serve/frontdoor.hpp"
#include "serve/resilience.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rb;

constexpr std::uint64_t kSeed = 0x4E51;
constexpr std::size_t kReplicas = 8;

serve::FrontDoorParams base_params(bool quick) {
  serve::FrontDoorParams p;
  p.replicas = kReplicas;
  p.replication = 3;
  p.key_universe = quick ? 2'000 : 10'000;
  p.zipf_s = 0.99;
  p.read_fraction = 0.95;
  p.value_bytes = 256;
  p.horizon = (quick ? 240 : 600) * sim::kMillisecond;
  p.max_attempts = 4;
  p.seed = kSeed;
  p.replica.device = node::find_device(node::DeviceKind::kCpu);
  p.replica.batch_overhead = 500 * sim::kMicrosecond;
  p.replica.per_request = node::KernelProfile{2.0e5, 6.0e5, 1.0, 512.0};
  p.replica.queue_limit = 64;
  p.replica.batch_max = 8;
  return p;
}

/// Feature toggles stacked onto the base deadline/timeout configuration.
struct Toggles {
  bool budget = false;
  bool breaker = false;
  bool hedge = false;
};

void apply(serve::FrontDoorParams& p, const Toggles& t) {
  // Deadlines and attempt timeouts are always on in this bench: they are
  // the substrate the toggled mechanisms act on (timeouts create the
  // zombies budgets must bound; deadlines bound how stale served work can
  // be). The attempt timeout sits above the healthy p99 (~2-3 ms) but below
  // a deep queue's full wait — the regime where real retry storms live.
  p.resilience.request_timeout = 60 * sim::kMillisecond;
  p.resilience.attempt_timeout = 6 * sim::kMillisecond;
  p.resilience.budget.enabled = t.budget;
  p.resilience.budget.ratio = 0.1;
  p.resilience.budget.burst = 50.0;
  p.resilience.breaker.enabled = t.breaker;
  p.resilience.breaker.failure_threshold = 5;
  p.resilience.breaker.open_cooldown = 25 * sim::kMillisecond;
  p.resilience.breaker.half_open_probes = 3;
  p.resilience.breaker.latency_threshold_s = 0.010;
  p.resilience.breaker.min_latency_samples = 20;
  p.resilience.breaker.latency_alpha = 0.2;
  p.resilience.hedge.enabled = t.hedge;
  p.resilience.hedge.quantile = 95.0;
  // Floor the hedge delay above the healthy p99 so steady-state traffic
  // almost never hedges; only genuinely straggling attempts (gray queueing)
  // cross it. This is what keeps hedge volume inside the 5% budget.
  p.resilience.hedge.min_delay = 3 * sim::kMillisecond;
  p.resilience.hedge.window = 512;
  p.resilience.hedge.min_samples = 50;
}

/// Telemetry policy shared by every run: the latency objective that splits
/// good from bad events, the rollup window width, and the burn-rate alert
/// rule (Google-SRE multi-window: short proves it is still happening, long
/// proves it is real).
constexpr double kSloLatencyS = 0.030;
constexpr sim::SimTime kRollupWindow = 5 * sim::kMillisecond;

obs::AlertParams alert_params() {
  obs::AlertParams ap;
  ap.objective = 0.999;
  ap.window = kRollupWindow;
  ap.min_events = 40;
  ap.rules = {obs::BurnRateRule{"page", 10.0, 2, 12}};
  return ap;
}

struct RunResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  double goodput_qps = 0.0;
  double availability = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  bool ledger_ok = false;
  serve::ResilienceStats stats;
  /// Causal-telemetry products of the run.
  std::vector<obs::Alert> alerts;
  std::vector<obs::BandDecomposition> bands;
  std::vector<obs::ExemplarTrace> exemplars;
  double peak_window_completed = 0.0;  // busiest 5 ms rollup window
};

RunResult run(const serve::FrontDoorParams& params,
              const faults::FaultPlan& plan, bool trace_export = false) {
  // Fresh causal/metric state per run: the tracer and registry are process
  // globals shared by every scenario in this bench.
  obs::RequestTracer& tracer = obs::RequestTracer::global();
  tracer.clear();
  obs::ExemplarParams ep;
  ep.max_exemplars = 64;
  ep.latency_threshold_s = kSloLatencyS;
  tracer.set_params(ep);
  tracer.set_enabled(true);
  obs::Registry::global().reset_for_test();

  net::Topology topo = net::make_fat_tree(4);  // 16 hosts, 4 pods
  sim::Simulator sim;
  net::Router router{topo};
  serve::FrontDoor door{sim, topo, router, params};
  obs::Rollup rollup{kRollupWindow};
  obs::AlertEngine alerts{alert_params()};
  door.slo().attach_telemetry(&rollup, &alerts, kSloLatencyS);
  door.preload();

  std::optional<faults::FaultInjector> injector;
  if (!plan.empty()) {
    injector.emplace(sim, topo, plan);
    injector->on_event(
        [&door](const faults::FaultEvent& ev) { door.handle_fault(ev); });
    injector->arm();
  }
  door.start();
  sim.run();

  const serve::SloAccountant& slo = door.slo();
  RunResult out;
  out.issued = slo.issued();
  out.completed = slo.completed();
  out.rejected = slo.rejected();
  out.failed = slo.failed();
  out.retries = slo.retries();
  out.goodput_qps = slo.goodput_qps(params.horizon);
  out.availability = slo.availability();
  out.ledger_ok = slo.ledger_ok();
  if (!slo.latency_seconds().empty()) {
    out.p50_ms = slo.latency_seconds().p50() * 1e3;
    out.p99_ms = slo.latency_seconds().p99() * 1e3;
    out.p999_ms = slo.latency_seconds().p999() * 1e3;
  }
  out.stats = door.resilience_stats();
  out.alerts = alerts.alerts(params.horizon);
  out.bands = tracer.band_summary();
  out.exemplars = tracer.exemplars();
  if (const obs::WindowedSeries* s = rollup.find("serve.completed")) {
    for (const obs::WindowStats& w : s->windows()) {
      out.peak_window_completed = std::max(out.peak_window_completed, w.sum);
    }
  }
  if (trace_export) {
    // Export just the retained exemplar trees: the recorder is enabled only
    // around the export so per-run request spam never reaches the file.
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const bool was = rec.enabled();
    rec.set_enabled(true);
    tracer.export_chrome(rec);
    rec.set_enabled(was);
  }
  tracer.set_enabled(false);
  return out;
}

/// First fired alert of a run, or nullptr.
const obs::Alert* first_alert(const RunResult& r) {
  return r.alerts.empty() ? nullptr : &r.alerts.front();
}

/// The p99.9-100 band of a run's critical-path summary, or nullptr.
const obs::BandDecomposition* top_band(const RunResult& r) {
  for (const obs::BandDecomposition& b : r.bands) {
    if (std::strcmp(b.band, "p99.9-100") == 0) return &b;
  }
  return nullptr;
}

/// Does any exemplar tree show the request stuck on `replica` — a queue or
/// service span with ref == replica lasting at least `min_ps`? The winning
/// attempt of a tail trace is usually the healthy-replica retry; the
/// degraded replica's footprint is the abandoned wave's queue/service spans.
bool exemplar_stuck_on(const RunResult& r, std::int64_t replica,
                       std::int64_t min_ps) {
  for (const obs::ExemplarTrace& ex : r.exemplars) {
    for (const obs::CausalSpan& s : ex.spans) {
      if ((s.segment == obs::Segment::kQueue ||
           s.segment == obs::Segment::kService) &&
          s.ref == replica && s.duration_ps() >= min_ps) {
        return true;
      }
    }
  }
  return false;
}

/// The pod (non-core switch component + its hosts) holding the most replica
/// hosts but not the gateway — the correlated blast radius of Part 1.
faults::FailureDomain victim_pod(const net::Topology& topo,
                                 const std::vector<net::NodeId>& replica_hosts,
                                 net::NodeId gateway) {
  const auto pods = faults::pod_domains(topo);
  const faults::FailureDomain* best = nullptr;
  std::size_t best_count = 0;
  for (const auto& pod : pods) {
    if (std::binary_search(pod.hosts.begin(), pod.hosts.end(), gateway))
      continue;
    std::size_t count = 0;
    for (const net::NodeId host : replica_hosts) {
      if (std::binary_search(pod.hosts.begin(), pod.hosts.end(), host))
        ++count;
    }
    if (count > best_count) {
      best_count = count;
      best = &pod;
    }
  }
  if (best == nullptr) {
    std::fprintf(stderr, "no replica-bearing pod found\n");
    std::exit(1);
  }
  return *best;
}

void fail_if(bool condition, const char* what) {
  if (!condition) return;
  std::fprintf(stderr, "ASSERTION FAILED: %s\n", what);
  std::exit(1);
}

std::string toggle_name(const Toggles& t) {
  if (t.budget && t.breaker && t.hedge) return "all";
  std::string name;
  if (t.budget) name += "+budget";
  if (t.breaker) name += "+breaker";
  if (t.hedge) name += "+hedge";
  return name.empty() ? "none" : name;
}

void print_row(const char* label, const RunResult& r) {
  std::printf(
      "%-16s %9llu %9llu %7llu %7llu %7llu %8.0f %7.2f %8.2f %8.2f\n",
      label, static_cast<unsigned long long>(r.issued),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.failed), r.goodput_qps,
      r.p50_ms, r.p99_ms, r.p999_ms);
}

void report_run(bench::Report& report, const std::string& prefix,
                const RunResult& r) {
  report.metric(prefix + ".goodput_qps", r.goodput_qps);
  report.metric(prefix + ".availability", r.availability);
  report.metric(prefix + ".retries", r.retries);
  report.metric(prefix + ".failed", r.failed);
  report.metric(prefix + ".rejected", r.rejected);
  report.metric(prefix + ".p50_ms", r.p50_ms);
  report.metric(prefix + ".p99_ms", r.p99_ms);
  report.metric(prefix + ".p999_ms", r.p999_ms);
  report.metric(prefix + ".ledger_ok", r.ledger_ok);
  report.metric(prefix + ".retries_budgeted", r.stats.retries_budgeted);
  report.metric(prefix + ".deadline_drops", r.stats.deadline_drops);
  report.metric(prefix + ".attempt_timeouts", r.stats.attempt_timeouts);
  report.metric(prefix + ".hedges_issued", r.stats.hedges_issued);
  report.metric(prefix + ".hedges_won", r.stats.hedges_won);
  report.metric(prefix + ".breaker_opens", r.stats.breaker_opens);
  report.metric(prefix + ".wasted_responses", r.stats.wasted_responses);
  // Causal-telemetry products: burn-rate alert timeline, exemplar retention
  // and the p99.9-100 critical-path decomposition.
  report.metric(prefix + ".alerts_fired", r.alerts.size());
  if (const obs::Alert* a = first_alert(r)) {
    report.metric(prefix + ".alert_fired_ms", sim::to_seconds(a->fired_at) * 1e3);
    report.metric(prefix + ".alert_cleared_ms",
                  a->cleared_at < 0 ? -1.0
                                    : sim::to_seconds(a->cleared_at) * 1e3);
  }
  report.metric(prefix + ".exemplars_retained", r.exemplars.size());
  report.metric(prefix + ".peak_window_completed", r.peak_window_completed);
  if (const obs::BandDecomposition* b = top_band(r)) {
    report.metric(prefix + ".p999_band.queue_share", b->queue_share);
    report.metric(prefix + ".p999_band.service_share", b->service_share);
    report.metric(prefix + ".p999_band.network_share", b->network_share);
    report.metric(prefix + ".p999_band.backoff_share", b->backoff_share);
    report.metric(prefix + ".p999_band.hedge_wait_share", b->hedge_wait_share);
    report.metric(prefix + ".p999_band.other_share", b->other_share);
  }
}

void print_bands(const RunResult& r) {
  std::printf("  %-10s %9s %8s | %6s %6s %6s %6s %6s %6s\n", "band", "count",
              "mean_ms", "queue", "svc", "net", "bkoff", "hedge", "other");
  for (const obs::BandDecomposition& b : r.bands) {
    std::printf("  %-10s %9llu %8.2f | %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
                b.band, static_cast<unsigned long long>(b.count),
                b.mean_latency_s * 1e3, b.queue_share, b.service_share,
                b.network_share, b.backoff_share, b.hedge_wait_share,
                b.other_share);
  }
}

void print_alerts(const char* label, const RunResult& r) {
  if (r.alerts.empty()) {
    std::printf("  %-16s no burn-rate alerts\n", label);
    return;
  }
  for (const obs::Alert& a : r.alerts) {
    if (a.active()) {
      std::printf("  %-16s alert '%s' fired %.1f ms (burn %.0fx/%.0fx), "
                  "active at horizon\n",
                  label, a.rule.c_str(), sim::to_seconds(a.fired_at) * 1e3,
                  a.burn_short, a.burn_long);
    } else {
      std::printf("  %-16s alert '%s' fired %.1f ms (burn %.0fx/%.0fx), "
                  "cleared %.1f ms\n",
                  label, a.rule.c_str(), sim::to_seconds(a.fired_at) * 1e3,
                  a.burn_short, a.burn_long,
                  sim::to_seconds(a.cleared_at) * 1e3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
  }
  if (trace_path.empty()) {
    if (const char* env = std::getenv("RB_TRACE")) trace_path = env;
  }
  const bool tracing = !trace_path.empty();

  bench::heading("EXT-RESIL",
                 "resilience control plane: pod outage, gray failure, "
                 "overload");
  bench::Report report{"ext_resilience", argc, argv};

  const auto params = base_params(quick);
  const double capacity = serve::estimated_capacity_qps(params, kReplicas);
  report.config("seed", kSeed);
  report.config("quick", quick);
  report.config("replicas", std::uint64_t{kReplicas});
  report.config("horizon_s", sim::to_seconds(params.horizon));
  report.config("capacity_qps", capacity);

  // Probe the topology once to size the blast radius.
  const net::Topology probe = net::make_fat_tree(4);
  sim::Simulator probe_sim;
  net::Router probe_router{probe};
  std::vector<net::NodeId> replica_hosts;
  net::NodeId gateway = 0;
  {
    serve::FrontDoor probe_door{probe_sim, probe, probe_router, params};
    replica_hosts = probe_door.replica_hosts();
    gateway = probe_door.gateway();
  }
  const faults::FailureDomain pod = victim_pod(probe, replica_hosts, gateway);
  std::size_t pod_replicas = 0;
  for (const net::NodeId host : replica_hosts) {
    if (std::binary_search(pod.hosts.begin(), pod.hosts.end(), host))
      ++pod_replicas;
  }
  report.config("pod_replicas", static_cast<std::uint64_t>(pod_replicas));

  // --- Part 1: correlated pod outage, retry budget on/off -----------------
  // The pod takes half the fleet, and the survivors spend the first 30 ms of
  // the failover browned out 3x (the rebalancing/compaction surge that rides
  // along with real failovers). The brownout pins the survivors' queues past
  // the attempt-timeout cliff, which is all the ignition a retry storm
  // needs: once a saturated queue's wait exceeds the timeout, every admitted
  // attempt is abandoned before service (zombie work), and its retry re-arms
  // the overload — the fleet stays locked in the metastable state long after
  // the brownout ends. The budget caps retries at ratio x issued, so the
  // budgeted fleet sheds the same ignition spike as failures and drains.
  const sim::SimTime out_at = params.horizon * 3 / 10;
  const sim::SimTime out_for = params.horizon * 7 / 20;  // repaired at 65%
  const sim::SimTime brownout = 30 * sim::kMillisecond;
  faults::FaultPlan pod_plan;
  faults::add_domain_outage(pod_plan, pod, out_at, out_for);
  for (const net::NodeId host : replica_hosts) {
    if (!std::binary_search(pod.hosts.begin(), pod.hosts.end(), host)) {
      pod_plan.add_node_degrade(host, out_at, brownout, 3.0);
    }
  }

  std::printf(
      "-- pod outage: %s (%zu of %zu replicas) dark %.0f-%.0f ms, survivors "
      "browned out 3x for %.0f ms, offered 0.3x capacity --\n\n",
      pod.name.c_str(), pod_replicas, std::size_t{kReplicas},
      sim::to_seconds(out_at) * 1e3, sim::to_seconds(out_at + out_for) * 1e3,
      sim::to_seconds(brownout) * 1e3);
  std::printf("%-16s %9s %9s %7s %7s %7s %8s %7s %8s %8s\n", "config",
              "issued", "done", "retry", "shed", "fail", "goodput", "p50",
              "p99", "p999");

  double goodput_nobudget = 0.0, goodput_budget = 0.0;
  std::uint64_t issued_budget = 0, retries_budget = 0;
  RunResult pod_none_run, pod_budget_run;
  const std::vector<Toggles> pod_rows =
      quick ? std::vector<Toggles>{{false, false, false}, {true, false, false}}
            : std::vector<Toggles>{{false, false, false},
                                   {true, false, false},
                                   {true, true, false},
                                   {true, true, true}};
  for (const Toggles& t : pod_rows) {
    auto p = params;
    p.offered_qps = 0.30 * capacity;
    // Deep enough that a pinned queue's wait (~9 ms) exceeds the 6 ms
    // attempt timeout — without that, admitted work always completes in
    // time and the storm regime is unreachable.
    p.replica.queue_limit = 128;
    apply(p, t);
    const RunResult r = run(p, pod_plan, tracing);
    print_row(toggle_name(t).c_str(), r);
    report_run(report, std::string{"pod."} + toggle_name(t), r);
    fail_if(!r.ledger_ok, "pod outage: SLO ledger must balance");
    if (!t.budget && !t.breaker && !t.hedge) {
      goodput_nobudget = r.goodput_qps;
      pod_none_run = r;
    }
    if (t.budget && !t.breaker && !t.hedge) {
      goodput_budget = r.goodput_qps;
      issued_budget = r.issued;
      retries_budget = r.retries;
      pod_budget_run = r;
    }
  }
  report.metric("pod.goodput_recovery_ratio",
                goodput_nobudget > 0.0 ? goodput_budget / goodput_nobudget
                                       : 0.0);
  std::printf("\n");
  print_alerts("none", pod_none_run);
  print_alerts("+budget", pod_budget_run);
  bench::note("without a budget, attempt timeouts + retries amplify the");
  bench::note("survivors' load into zombie work (served-but-abandoned);");
  bench::note("the budget caps retry amplification and goodput recovers.");

  // The headline claims, asserted on the deterministic golden seed.
  fail_if(goodput_budget <= goodput_nobudget,
          "retry budget must improve pod-outage goodput");
  const double retry_ceiling =
      0.1 * static_cast<double>(issued_budget) + 50.0 + 1.0;
  fail_if(static_cast<double>(retries_budget) > retry_ceiling,
          "budgeted retries must respect ratio x issued + burst");
  // Burn-rate alerting on the budgeted fleet: the outage must page —
  // deterministically — and the page must clear once the fleet drains
  // after repair. Never before the fault, never stuck active at horizon.
  {
    const obs::Alert* a = first_alert(pod_budget_run);
    fail_if(a == nullptr, "pod outage must fire a burn-rate alert");
    if (a != nullptr) {
      fail_if(a->fired_at < out_at,
              "burn-rate alert must not fire before the outage");
      fail_if(a->fired_at > out_at + out_for,
              "burn-rate alert must fire during the outage window");
      const obs::Alert& last = pod_budget_run.alerts.back();
      fail_if(last.active(),
              "burn-rate alert must clear after repair, before the horizon");
      fail_if(last.cleared_at >= 0 && last.cleared_at < out_at + out_for,
              "burn-rate alert must stay active until the pod is repaired");
    }
  }

  // --- Part 2: gray failure (one replica 8x slower), hedge/breaker --------
  faults::FaultPlan gray_plan;
  const sim::SimTime gray_at = params.horizon / 4;
  const sim::SimTime gray_for = params.horizon / 4;
  gray_plan.add_node_degrade(replica_hosts[1], gray_at, gray_for, 8.0);

  std::printf(
      "\n-- gray failure: replica host %u slowed 8x for %.0f-%.0f ms, "
      "offered 0.5x capacity --\n\n",
      replica_hosts[1], sim::to_seconds(gray_at) * 1e3,
      sim::to_seconds(gray_at + gray_for) * 1e3);
  std::printf("%-16s %9s %9s %7s %7s %7s %8s %7s %8s %8s\n", "config",
              "issued", "done", "retry", "shed", "fail", "goodput", "p50",
              "p99", "p999");

  double p999_plain = 0.0, p999_hedge = 0.0;
  std::uint64_t hedge_issued_count = 0, hedge_won_count = 0;
  std::uint64_t hedge_total_attempts = 0;
  RunResult gray_none_run, gray_hedge_run;
  const std::vector<Toggles> gray_rows =
      quick ? std::vector<Toggles>{{false, false, false}, {false, false, true}}
            : std::vector<Toggles>{{false, false, false},
                                   {false, false, true},
                                   {false, true, false},
                                   {false, true, true}};
  for (const Toggles& t : gray_rows) {
    auto p = params;
    p.offered_qps = 0.5 * capacity;
    apply(p, t);
    // The 6 ms attempt timeout censors the slowest evidence, so the breaker
    // only ever observes gray successes in the 4-6 ms band. Tune its trip
    // threshold between the healthy EWMA (~2 ms) and that band — the
    // per-service tuning any latency-based breaker needs in production.
    p.resilience.breaker.latency_threshold_s = 0.0035;
    const RunResult r = run(p, gray_plan, tracing);
    print_row(toggle_name(t).c_str(), r);
    report_run(report, std::string{"gray."} + toggle_name(t), r);
    fail_if(!r.ledger_ok, "gray failure: SLO ledger must balance");
    if (!t.hedge && !t.breaker) {
      p999_plain = r.p999_ms;
      gray_none_run = r;
    }
    if (t.hedge && !t.breaker) {
      p999_hedge = r.p999_ms;
      hedge_issued_count = r.stats.hedges_issued;
      hedge_won_count = r.stats.hedges_won;
      hedge_total_attempts = r.issued + r.retries;
      gray_hedge_run = r;
    }
  }
  const double hedge_fraction =
      hedge_total_attempts > 0
          ? static_cast<double>(hedge_issued_count) /
                static_cast<double>(hedge_total_attempts)
          : 0.0;
  std::printf("\nhedges issued %llu, won %llu (%.2f%% extra issued load)\n",
              static_cast<unsigned long long>(hedge_issued_count),
              static_cast<unsigned long long>(hedge_won_count),
              100.0 * hedge_fraction);
  report.metric("gray.p999_cut_ratio",
                p999_plain > 0.0 ? p999_hedge / p999_plain : 0.0);
  report.metric("gray.hedge_fraction", hedge_fraction);
  bench::note("health checks pass on the gray host, so only latency-aware");
  bench::note("machinery helps: hedging races a second owner after the");
  bench::note("tracked p95, cutting p999 for <= ~5% extra issued load.");

  fail_if(p999_hedge >= p999_plain,
          "hedging must cut p999 under gray failure");
  fail_if(hedge_fraction > 0.05,
          "hedge volume must stay within 5% extra issued load");

  // Causal tracing closes the loop: the critical-path decomposition of the
  // unhedged run's tail must blame the gray replica's *service* segment (not
  // hedge wait, not the fabric), and the retained exemplar trees must
  // actually contain a winning attempt served on that replica. The degraded
  // host is replica_hosts[1] == ReplicaId 1 by construction.
  std::printf("\ncritical-path decomposition (no hedging), per band:\n");
  print_bands(gray_none_run);
  {
    const obs::BandDecomposition* tail = top_band(gray_none_run);
    fail_if(tail == nullptr || tail->count == 0,
            "gray run must produce a p99.9-100 critical-path band");
    if (tail != nullptr) {
      // The hedge-delay share of p999: if the decomposition blames the
      // degraded replica for at least this much of the tail, a hedge fired
      // after hedge.min_delay provably races the right bottleneck.
      const double hedge_delay_share =
          p999_plain > 0.0 ? 3.0 /*ms, hedge.min_delay*/ / p999_plain : 1.0;
      fail_if(tail->queue_share + tail->service_share < hedge_delay_share,
              "gray p999 must be attributed to the degraded replica's "
              "queue/service segments, >= the hedge-delay share");
      fail_if(tail->service_share < tail->hedge_wait_share,
              "gray p999 must be replica time, not hedge wait");
      fail_if(tail->other_share > 0.2,
              "gray p999 must not hide in the 'other' segment");
    }
    fail_if(gray_none_run.exemplars.empty(),
            "gray run must retain exemplar trace trees");
    fail_if(!exemplar_stuck_on(gray_none_run, 1, 3 * sim::kMillisecond),
            "an exemplar must show the request stuck on the gray replica "
            "for at least the hedge delay");
    // Hedged tail: the decomposition must show the mechanism working — the
    // residual p999 is the hedge delay plus a healthy replica's service
    // (hedge-wait visible on the winning path), no longer the gray queue.
    const obs::BandDecomposition* htail = top_band(gray_hedge_run);
    fail_if(htail == nullptr,
            "hedged gray run must produce a p99.9-100 band");
    if (htail != nullptr && tail != nullptr) {
      fail_if(htail->hedge_wait_share <= 0.0,
              "hedged gray p999 must carry hedge-wait on the critical path");
      fail_if(htail->queue_share >= tail->queue_share,
              "hedging must move the p999 tail off the gray replica's queue");
    }
  }

  // --- Part 3: pure overload control --------------------------------------
  std::printf("\n-- pure overload: offered 2.5x capacity, no faults, full "
              "control plane --\n\n");
  std::printf("%-16s %9s %9s %7s %7s %7s %8s %7s %8s %8s\n", "config",
              "issued", "done", "retry", "shed", "fail", "goodput", "p50",
              "p99", "p999");
  {
    auto p = params;
    p.offered_qps = 2.5 * capacity;
    apply(p, Toggles{true, true, true});
    const RunResult r = run(p, faults::FaultPlan{}, tracing);
    print_row("all", r);
    report_run(report, "overload.all", r);
    fail_if(!r.ledger_ok, "overload: SLO ledger must balance");
    // Overload is not failure: rejections and timeouts must not open
    // breakers (only kills/unreachability do), and shedding must keep
    // goodput at a healthy fraction of capacity.
    fail_if(r.stats.breaker_opens != 0,
            "pure overload must not trip circuit breakers");
    fail_if(r.goodput_qps < 0.7 * capacity,
            "overload goodput must stay near capacity (shed, not collapse)");
  }
  bench::note("admission control sheds the excess; breakers stay closed");
  bench::note("because overload is fleet-wide slowness, not replica death.");

  if (tracing) {
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    rec.write_chrome_json(trace_path);
    std::printf("\nwrote %zu causal spans to %s\n", rec.event_count(),
                trace_path.c_str());
  }

  report.write();
  return 0;
}

// E13 — the four key industry findings from "89 in-depth interviews with
// key stakeholders from more than 70 distinct European companies" (paper
// Sec V.A).
//
// A synthetic stakeholder population with the campaign's sector mix answers
// the survey by actually running the library's ROI model. Expected shape:
// few companies perceive hardware bottlenecks (F1), a minority is convinced
// of accelerator ROI (F2), hardware roadmaps are rare (F3), commodity x86
// dominates (F4), and finance leads ROI conviction (the Rec-4 sectors).

#include <cstdio>

#include "bench_util.hpp"
#include "roadmap/report.hpp"
#include "roadmap/survey.hpp"

int main() {
  using namespace rb;
  bench::heading("E13", "Stakeholder survey regeneration (Sec V.A findings)");

  std::printf("%s\n", roadmap::render_findings().c_str());

  const auto results =
      roadmap::run_survey(roadmap::make_population(70, 20160101), 20160102);
  std::printf("synthetic campaign: %zu companies, %zu interviews\n\n",
              results.companies, results.interviews);
  std::printf("%-52s %8s %10s\n", "statistic", "value", "finding");
  std::printf("%-52s %7.1f%% %10s\n",
              "perceive a hardware processing bottleneck",
              results.frac_bottleneck_aware * 100.0, "F1 (low)");
  std::printf("%-52s %7.1f%% %10s\n",
              "convinced of accelerator ROI (model-evaluated)",
              results.frac_roi_convinced * 100.0, "F2 (low)");
  std::printf("%-52s %7.1f%% %10s\n", "maintain a hardware roadmap",
              results.frac_with_hw_roadmap * 100.0, "F3 (low)");
  std::printf("%-52s %7.1f%% %10s\n", "run on commodity x86 only",
              results.frac_on_commodity_x86 * 100.0, "F4 (high)");

  std::printf("\n-- ROI conviction by sector --\n");
  for (const auto& [sector, frac] : results.roi_by_sector) {
    std::printf("%-16s %6.1f%%\n", sector.c_str(), frac * 100.0);
  }
  bench::note("paper shape: the four findings reproduce as statistics; the");
  bench::note("finance sector (hot accelerators, Rec 4) leads conviction.");
  return 0;
}

// E8 — "OpenCL only ensures correctness of the computation on each
// platform. It does not ensure that the computation has been optimized"
// (paper Sec IV.C.3; Rec 6 funds FPGA programmability to close the gap).
//
// The same kernels run on each device via (a) a generic portable code path
// and (b) a device-tuned path. Expected shape: the tuned/generic gap widens
// with device specialization — modest on CPU, ~2x on GPU, >5x on FPGA.
//
// The CPU rows for select-scan and hash-join are MEASURED, not modeled:
// the generic path is the scalar kernel, the tuned path the dispatched
// SIMD kernel (accel/simd) timed on the running CPU. Hosts without a SIMD
// unit fall back to the modeled path-efficiency constants, marked as such.

#include <cstdio>
#include <optional>

#include "accel/offload.hpp"
#include "accel/simd/measure.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rb;
  bench::heading("E8", "Performance portability: generic vs device-tuned kernels");

  constexpr std::uint64_t kRows = 4'000'000;
  const auto devices = {node::DeviceKind::kCpu, node::DeviceKind::kGpu,
                        node::DeviceKind::kFpga};

  // Measured CPU gaps (scalar twin = generic portable, dispatched SIMD =
  // device tuned). nullopt on scalar-only hosts -> modeled fallback.
  const auto scan = accel::simd::measure_select_scan(16384);
  const auto probe = accel::simd::measure_join_probe(16384);

  for (const auto block :
       {accel::BlockKind::kSelectScan, accel::BlockKind::kHashJoin,
        accel::BlockKind::kKMeans, accel::BlockKind::kDnnInference}) {
    std::printf("\n-- %s --\n", to_string(block).c_str());
    std::printf("%-10s %14s %14s %10s\n", "device", "generic(ms)",
                "tuned(ms)", "gap");
    for (const auto kind : devices) {
      const auto device = node::find_device(kind);
      if (!accel::supports(kind, block)) continue;
      const std::optional<accel::simd::MeasuredKernel>* measured = nullptr;
      if (kind == node::DeviceKind::kCpu) {
        if (block == accel::BlockKind::kSelectScan) measured = &scan;
        if (block == accel::BlockKind::kHashJoin) measured = &probe;
      }
      if (measured != nullptr && measured->has_value()) {
        const auto& m = **measured;
        std::printf("%-10s %14.4f %14.4f %9.2fx  (measured, %s)\n",
                    node::to_string(kind).c_str(), m.scalar_ms, m.tuned_ms,
                    m.speedup, accel::simd::to_string(m.isa));
        continue;
      }
      const auto generic = accel::block_time(
          device, block, kRows, accel::CodePath::kGenericPortable);
      const auto tuned = accel::block_time(device, block, kRows,
                                           accel::CodePath::kDeviceTuned);
      std::printf("%-10s %14.3f %14.3f %9.2fx\n",
                  node::to_string(kind).c_str(),
                  sim::to_milliseconds(generic), sim::to_milliseconds(tuned),
                  static_cast<double>(generic) / static_cast<double>(tuned));
    }
  }
  bench::note("paper shape: portable abstractions are correct everywhere but");
  bench::note("leave most of an FPGA's roofline unused - the Rec 6 gap.");
  bench::note("CPU scan/join rows are measured on this host's SIMD unit; the");
  bench::note("same portable-vs-tuned gap the paper argues, on real silicon.");
  return 0;
}

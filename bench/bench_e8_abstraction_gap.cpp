// E8 — "OpenCL only ensures correctness of the computation on each
// platform. It does not ensure that the computation has been optimized"
// (paper Sec IV.C.3; Rec 6 funds FPGA programmability to close the gap).
//
// The same kernels run on each device via (a) a generic portable code path
// and (b) a device-tuned path. Expected shape: the tuned/generic gap widens
// with device specialization — modest on CPU, ~2x on GPU, >5x on FPGA.

#include <cstdio>

#include "accel/offload.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rb;
  bench::heading("E8", "Performance portability: generic vs device-tuned kernels");

  constexpr std::uint64_t kRows = 4'000'000;
  const auto devices = {node::DeviceKind::kCpu, node::DeviceKind::kGpu,
                        node::DeviceKind::kFpga};

  for (const auto block :
       {accel::BlockKind::kKMeans, accel::BlockKind::kHashJoin,
        accel::BlockKind::kDnnInference}) {
    std::printf("\n-- %s --\n", to_string(block).c_str());
    std::printf("%-10s %14s %14s %10s\n", "device", "generic(ms)",
                "tuned(ms)", "gap");
    for (const auto kind : devices) {
      const auto device = node::find_device(kind);
      if (!accel::supports(kind, block)) continue;
      const auto generic = accel::block_time(
          device, block, kRows, accel::CodePath::kGenericPortable);
      const auto tuned = accel::block_time(device, block, kRows,
                                           accel::CodePath::kDeviceTuned);
      std::printf("%-10s %14.3f %14.3f %9.2fx\n",
                  node::to_string(kind).c_str(),
                  sim::to_milliseconds(generic), sim::to_milliseconds(tuned),
                  static_cast<double>(generic) / static_cast<double>(tuned));
    }
  }
  bench::note("paper shape: portable abstractions are correct everywhere but");
  bench::note("leave most of an FPGA's roofline unused - the Rec 6 gap.");
  return 0;
}

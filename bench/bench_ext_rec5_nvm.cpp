// EXT-R5 — evidence for Recommendation 5 ("encourage system co-design ...
// integrating more subsystems into the processor device as well as new
// non-volatile memories and I/O interfaces").
//
// For Big Data working sets that outgrow affordable DRAM, tiering NVM under
// DRAM is the co-design the roadmap points at. Sweeps: (1) average access
// latency vs working set for DRAM-only / DRAM+NVM / DRAM+NVM+flash at a
// fixed memory budget; (2) the budget optimizer's choice as the working set
// grows. Expected shape: DRAM-only wins while it covers the working set,
// then loses catastrophically to the overflow penalty; tiered configs
// degrade gracefully.

#include <cstdio>

#include "bench_util.hpp"
#include "node/memory.hpp"

int main() {
  using namespace rb;
  bench::heading("EXT-R5", "NVM tiering under a fixed memory budget (Rec 5)");

  constexpr double kBudget = 2000.0;  // dollars of memory per node
  const auto dram = node::dram_ddr4();
  const auto nvm = node::nvm_xpoint();
  const auto flash = node::flash_nvme();

  const node::TieredMemory dram_only{
      {{dram, kBudget / dram.dollars_per_gib}}};
  const node::TieredMemory dram_nvm{
      {{dram, kBudget * 0.4 / dram.dollars_per_gib},
       {nvm, kBudget * 0.6 / nvm.dollars_per_gib}}};
  const node::TieredMemory three_tier{
      {{dram, kBudget * 0.4 / dram.dollars_per_gib},
       {nvm, kBudget * 0.4 / nvm.dollars_per_gib},
       {flash, kBudget * 0.2 / flash.dollars_per_gib}}};

  std::printf("budget $%.0f buys: %.0f GiB DRAM-only, %.0f GiB DRAM+NVM, "
              "%.0f GiB with flash\n\n",
              kBudget, dram_only.total_capacity_gib(),
              dram_nvm.total_capacity_gib(), three_tier.total_capacity_gib());

  std::printf("%-14s %16s %16s %16s\n", "working set", "dram-only(ns)",
              "dram+nvm(ns)", "+flash(ns)");
  for (const double ws : {128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
    const auto a = node::evaluate_memory(dram_only, ws, 0.5);
    const auto b = node::evaluate_memory(dram_nvm, ws, 0.5);
    const auto c = node::evaluate_memory(three_tier, ws, 0.5);
    std::printf("%-11.0fGiB %16.0f %16.0f %16.0f\n", ws, a.avg_latency_ns,
                b.avg_latency_ns, c.avg_latency_ns);
  }

  std::printf("\n-- budget optimizer's pick vs working set --\n");
  std::printf("%-14s %-16s %14s %12s\n", "working set", "pick",
              "latency(ns)", "covered");
  for (const double ws : {128.0, 512.0, 2048.0, 8192.0}) {
    const auto plan = node::best_memory_under_budget(kBudget, ws, 0.5);
    std::printf("%-11.0fGiB %-16s %14.0f %11.1f%%\n", ws, plan.label.c_str(),
                plan.evaluation.avg_latency_ns,
                plan.evaluation.hit_fraction_covered * 100.0);
  }
  bench::note("shape: DRAM-only until the working set outgrows it, then");
  bench::note("NVM tiers win by orders of magnitude over paging (Rec 5).");
  return 0;
}

// OBS-OVH — proves the observability layer's zero-overhead-when-disabled
// claim on the hottest loop in the repo: max-min fair progressive filling
// (the FlowSimulator::reallocate inner loop). One shared water-fill kernel
// runs under two telemetry tails — matching where the shipping
// instrumentation actually sits (after the fill, never inside it):
//
//  * NoopSink   — the compile-time no-op mirror types (obs::NoopCounter);
//                 the optimizer deletes every telemetry statement;
//  * GuardedSink — the shipping instrumentation: real registry-backed
//                 counters behind the runtime obs::enabled() check, with
//                 observability left OFF (the default).
//
// The acceptance bar is <2% overhead of the guarded-disabled path over the
// no-op path. Run with --json <path> (or RB_BENCH_JSON) for machine output.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "accel/simd/simd.hpp"
#include "bench_util.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/rollup.hpp"
#include "storage/wal.hpp"

namespace {

using rb::obs::Counter;
using rb::obs::NoopCounter;

/// Telemetry exactly as the instrumented stack does it when everything is
/// off: one relaxed atomic load for the metric guard, one for the causal
/// tracer (which hands back an inactive context), and the null-pointer
/// guards the SLO accountant pays for its unattached rollup/alert sinks.
struct GuardedSink {
  Counter* fills;
  rb::obs::Gauge* total_rate;
  rb::obs::Rollup* rollup = nullptr;       // never attached in this bench
  rb::obs::AlertEngine* alerts = nullptr;  // never attached in this bench

  GuardedSink()
      : fills{&rb::obs::Registry::global().counter("bench.fills")},
        total_rate{&rb::obs::Registry::global().gauge("bench.fill_rate")} {}

  void on_fill(double total) {
    if (rb::obs::enabled()) {
      fills->add();
      total_rate->set(total);
    }
    const rb::obs::TraceContext ctx =
        rb::obs::RequestTracer::global().start_trace("fill", 0);
    if (ctx.active()) total_rate->set(total);  // never taken while disabled
    if (rollup != nullptr) rollup->counter("bench.fills").record(0, 1.0);
    if (alerts != nullptr) alerts->record_good(0);
  }
};

struct NoopSink {
  NoopCounter fills;
  rb::obs::NoopGauge total_rate;
  void on_fill(double) {}
};

/// Synthetic max-min fair-share instance mirroring FlowSimulator::reallocate:
/// progressive filling over `flows` flows crossing `links` directed links,
/// each flow on a fixed 4-link pseudo-random path.
struct Instance {
  std::vector<double> capacity;           // per link, bits/s
  std::vector<std::array<int, 4>> paths;  // per flow

  Instance(std::size_t links, std::size_t flows) {
    capacity.resize(links);
    std::uint64_t x = 0x243F6A8885A308D3ULL;
    const auto next = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    for (auto& c : capacity) c = 1e9 + static_cast<double>(next() % 1000) * 1e6;
    paths.resize(flows);
    for (auto& p : paths) {
      for (auto& l : p) l = static_cast<int>(next() % links);
    }
  }
};

/// One full progressive-filling pass; returns the sum of allocated rates so
/// the compiler cannot discard the work. Deliberately NOT templated on the
/// sink: both measured paths run this exact function, so the comparison
/// isolates the per-fill telemetry tail (which is where the shipping
/// instrumentation lives — the fabric's inner loop is untouched too) instead
/// of code-layout luck between two template instantiations.
[[gnu::noinline]] double water_fill(const Instance& in) {
  const std::size_t links = in.capacity.size();
  const std::size_t flows = in.paths.size();
  std::vector<double> remaining = in.capacity;
  std::vector<int> active_on_link(links, 0);
  std::vector<char> fixed(flows, 0);
  std::vector<double> rate(flows, 0.0);

  for (const auto& p : in.paths) {
    for (const int l : p) ++active_on_link[l];
  }

  std::size_t unfixed = flows;
  while (unfixed > 0) {
    // Bottleneck link: min remaining / active.
    double fair = -1.0;
    int bottleneck = -1;
    for (std::size_t l = 0; l < links; ++l) {
      if (active_on_link[l] == 0) continue;
      const double share = remaining[l] / active_on_link[l];
      if (bottleneck < 0 || share < fair) {
        fair = share;
        bottleneck = static_cast<int>(l);
      }
    }
    if (bottleneck < 0) break;
    // Fix every unfixed flow crossing the bottleneck at the fair share.
    std::uint64_t saturated = 0;
    for (std::size_t f = 0; f < flows; ++f) {
      if (fixed[f]) continue;
      bool crosses = false;
      for (const int l : in.paths[f]) {
        if (l == bottleneck) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      fixed[f] = 1;
      rate[f] = fair;
      --unfixed;
      ++saturated;
      for (const int l : in.paths[f]) {
        remaining[l] -= fair;
        --active_on_link[l];
      }
    }
    if (saturated == 0) break;  // degenerate; avoid spinning
  }
  double total = 0.0;
  for (const double r : rate) total += r;
  return total;
}

/// Telemetry consumes only values the kernel computes anyway, exactly like
/// the fabric's gauge update consuming its already-built allocation map.
template <typename Sink>
double time_once_us(const Instance& in, Sink& sink, int reps,
                    double& checksum) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    const double total = water_fill(in);
    sink.on_fill(total);
    checksum += total;
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
}

/// --- Query-operator instrumentation -----------------------------------------
//
// Same claim, second hot loop: the vectorized query engine's per-batch
// telemetry tail (query/exec/operators.hpp). Operator::push/emit mirror
// batch and row counts into registry counters strictly behind the
// obs::enabled() guard — a handful of adds per BATCH, never per row. The
// kernel below is a batch filter+sum pass shaped like FilterInt feeding an
// aggregate; the guarded sink pays exactly the shipping tail (one relaxed
// load, branch not taken) per batch.

struct OpGuardedSink {
  Counter* rows_in;
  Counter* rows_out;
  Counter* batches;

  OpGuardedSink() {
    auto& reg = rb::obs::Registry::global();
    const rb::obs::Labels labels{{"op", "bench_filter"}};
    rows_in = &reg.counter("query.rows_in", labels);
    rows_out = &reg.counter("query.rows_out", labels);
    batches = &reg.counter("query.batches", labels);
  }

  void on_batch(std::uint64_t in, std::uint64_t out) {
    if (rb::obs::enabled()) {
      batches->add();
      rows_in->add(in);
      rows_out->add(out);
    }
  }
};

struct OpNoopSink {
  NoopCounter rows_in, rows_out, batches;
  void on_batch(std::uint64_t, std::uint64_t) {}
};

struct BatchInstance {
  std::vector<std::int64_t> values;
  std::size_t batch_size;

  BatchInstance(std::size_t rows, std::size_t batch) : batch_size{batch} {
    values.resize(rows);
    std::uint64_t x = 0x9E3779B97F4A7C15ULL;
    for (auto& v : values) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      v = static_cast<std::int64_t>(x % 1000);
    }
  }
};

/// One batch of work: selection-building filter then a sum over the
/// selected rows. Deliberately NOT templated on the sink (same reason as
/// water_fill above): both measured paths run this exact function, so the
/// comparison isolates the per-batch telemetry tail, which is where the
/// engine's instrumentation sits (Operator::push, after do_push returns).
[[gnu::noinline]] std::int64_t filter_sum_batch(
    const std::int64_t* values, std::size_t n,
    std::vector<std::uint32_t>& sel) {
  sel.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] >= 500) sel.push_back(static_cast<std::uint32_t>(i));
  }
  std::int64_t total = 0;
  for (const std::uint32_t i : sel) total += values[i];
  return total;
}

template <typename Sink>
double time_batches_us(const BatchInstance& in, Sink& sink, int reps,
                       double& checksum) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::uint32_t> sel;
  sel.reserve(in.batch_size);
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    std::int64_t total = 0;
    for (std::size_t base = 0; base < in.values.size();
         base += in.batch_size) {
      const std::size_t n = std::min(in.batch_size, in.values.size() - base);
      total += filter_sum_batch(in.values.data() + base, n, sel);
      sink.on_batch(n, sel.size());
    }
    checksum += static_cast<double>(total);
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
}

/// --- Durable-store WAL-append instrumentation -------------------------------
//
// Same claim, third hot loop: the durable LSM's per-put telemetry tail
// (storage/lsm.cpp). Every put/erase frames a record into the WAL and then
// mirrors the append into storage.wal_appends strictly behind the
// obs::enabled() guard. The kernel below is the shipping frame encoder
// (encode_wal_record: CRC32C over the payload plus the length header); the
// guarded sink pays exactly the put() tail per record.

struct WalGuardedSink {
  Counter* appends;
  Counter* bytes;

  WalGuardedSink() {
    auto& reg = rb::obs::Registry::global();
    appends = &reg.counter("storage.wal_appends");
    bytes = &reg.counter("storage.wal_bytes");
  }

  void on_append(std::uint64_t framed_bytes) {
    if (rb::obs::enabled()) {
      appends->add();
      bytes->add(framed_bytes);
    }
  }
};

struct WalNoopSink {
  NoopCounter appends, bytes;
  void on_append(std::uint64_t) {}
};

struct WalInstance {
  std::vector<rb::storage::WalRecord> records;

  explicit WalInstance(std::size_t n) {
    records.resize(n);
    std::uint64_t x = 0xC2B2AE3D27D4EB4FULL;
    for (auto& r : records) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      r.key = "key-" + std::to_string(x % 100000);
      r.value.assign(32, static_cast<char>('a' + x % 26));
    }
  }
};

/// One record framed (CRC32C + header + payload) — the shipping encoder,
/// deliberately NOT templated on the sink (same reason as water_fill above).
[[gnu::noinline]] std::size_t frame_record(const rb::storage::WalRecord& r) {
  return rb::storage::encode_wal_record(r).size();
}

template <typename Sink>
double time_wal_us(const WalInstance& in, Sink& sink, int reps,
                   double& checksum) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    std::uint64_t total = 0;
    for (const auto& record : in.records) {
      const std::size_t framed = frame_record(record);
      sink.on_append(framed);
      total += framed;
    }
    checksum += static_cast<double>(total);
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
}

/// --- SIMD selection-scan instrumentation ------------------------------------
//
// Same claim, fourth hot loop: the dispatched SIMD kernel layer's per-batch
// telemetry tail (query/exec/operators.cpp). FilterInt's range path mirrors
// rows scanned into accel.simd_rows{kernel=select_between} strictly behind
// the obs::enabled() guard — one add per BATCH, after the kernel returns.
// The kernel below is the shipping dispatched select_between (AVX-512 on
// capable hosts), the fastest loop in the repo and therefore the hardest
// place for the disabled tail to hide.

struct SimdGuardedSink {
  Counter* rows;

  SimdGuardedSink()
      : rows{&rb::obs::Registry::global().counter(
            "accel.simd_rows",
            rb::obs::Labels{{"kernel", "select_between"}})} {}

  void on_batch(std::uint64_t n) {
    if (rb::obs::enabled()) rows->add(n);
  }
};

struct SimdNoopSink {
  NoopCounter rows;
  void on_batch(std::uint64_t) {}
};

struct SimdInstance {
  // 64B-aligned like the engine's column buffers; an unaligned 64B vector
  // load splits two cache lines and halves effective L1 bandwidth.
  std::int64_t* values;
  std::uint32_t* sel;
  std::size_t rows;
  std::size_t batch;

  SimdInstance(std::size_t n, std::size_t b)
      : values{static_cast<std::int64_t*>(
            std::aligned_alloc(64, n * sizeof(std::int64_t)))},
        sel{static_cast<std::uint32_t*>(
            std::aligned_alloc(64, ((n * sizeof(std::uint32_t) + 63) / 64) *
                                       64))},
        rows{n},
        batch{b} {
    std::uint64_t x = 0x2545F4914F6CDD1DULL;
    for (std::size_t i = 0; i < n; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      values[i] = static_cast<std::int64_t>(x % 1000);
    }
  }
  ~SimdInstance() {
    std::free(values);
    std::free(sel);
  }
  SimdInstance(const SimdInstance&) = delete;
  SimdInstance& operator=(const SimdInstance&) = delete;
};

/// One batch through the dispatched kernel — deliberately NOT templated on
/// the sink (same reason as water_fill above).
[[gnu::noinline]] std::size_t simd_scan_batch(const std::int64_t* values,
                                              std::size_t n,
                                              std::uint32_t* sel) {
  return rb::accel::simd::kernels().select_between(values, n, 250, 750, sel);
}

template <typename Sink>
double time_simd_us(const SimdInstance& in, Sink& sink, int reps,
                    double& checksum) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    std::size_t total = 0;
    for (std::size_t base = 0; base < in.rows; base += in.batch) {
      const std::size_t n = std::min(in.batch, in.rows - base);
      total += simd_scan_batch(in.values + base, n, in.sel);
      sink.on_batch(n);
    }
    checksum += static_cast<double>(total);
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rb;
  bench::heading("OBS-OVH",
                 "Disabled-telemetry overhead on the max-min fair-share loop");
  bench::Report report{"obs_overhead", argc, argv};

  constexpr std::size_t kLinks = 128;
  constexpr std::size_t kFlows = 1024;
  constexpr int kReps = 20;
  report.config("links", std::int64_t{kLinks});
  report.config("flows", std::int64_t{kFlows});
  report.config("reps", std::int64_t{kReps});

  obs::set_enabled(false);  // the shipping default; makes the claim explicit
  obs::RequestTracer::global().set_enabled(false);
  const Instance instance{kLinks, kFlows};
  double checksum = 0.0;

  NoopSink noop;
  GuardedSink guarded;  // resolves its registry counters up front
  (void)water_fill(instance);  // warm caches before timing

  // Time the two paths back-to-back in pairs (alternating which goes first)
  // and take the median of the per-pair ratios: frequency drift and
  // scheduler noise hit both halves of a pair, so the ratio is far more
  // stable than two independent minima.
  constexpr int kAttempts = 41;
  std::vector<double> ratios;
  double noop_us = 1e300, guarded_us = 1e300;
  ratios.reserve(kAttempts);
  for (int a = 0; a < kAttempts; ++a) {
    double n = 0.0, g = 0.0;
    if (a % 2 == 0) {
      n = time_once_us(instance, noop, kReps, checksum);
      g = time_once_us(instance, guarded, kReps, checksum);
    } else {
      g = time_once_us(instance, guarded, kReps, checksum);
      n = time_once_us(instance, noop, kReps, checksum);
    }
    noop_us = std::min(noop_us, n);
    guarded_us = std::min(guarded_us, g);
    ratios.push_back(g / n);
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct = (ratios[kAttempts / 2] - 1.0) * 100.0;

  std::printf("%-28s %14.1f us/fill\n", "no-op sink (compile-time)", noop_us);
  std::printf("%-28s %14.1f us/fill\n", "guarded sink (obs disabled)",
              guarded_us);
  std::printf("%-28s %+14.2f %%   (accept: < 2%%)\n", "overhead", overhead_pct);
  std::printf("(checksum %.3e)\n", checksum);

  report.metric("noop_us_per_fill", noop_us);
  report.metric("guarded_disabled_us_per_fill", guarded_us);
  report.metric("overhead_pct", overhead_pct);
  report.metric("pass", overhead_pct < 2.0);

  bench::note("disabled observability costs one relaxed atomic load per");
  bench::note("reallocation pass — noise-level on the water-fill kernel.");

  // --- Query-operator per-batch tail ---------------------------------------
  bench::heading("OBS-OVH (query)",
                 "Disabled-telemetry overhead on the vectorized batch loop");
  constexpr std::size_t kRows = 1 << 20;
  constexpr std::size_t kBatch = 1024;
  constexpr int kBatchReps = 20;
  report.config("query_rows", std::int64_t{kRows});
  report.config("query_batch", std::int64_t{kBatch});

  const BatchInstance batch_instance{kRows, kBatch};
  OpNoopSink op_noop;
  OpGuardedSink op_guarded;
  (void)time_batches_us(batch_instance, op_noop, 1, checksum);  // warm caches

  std::vector<double> op_ratios;
  double op_noop_us = 1e300, op_guarded_us = 1e300;
  op_ratios.reserve(kAttempts);
  for (int a = 0; a < kAttempts; ++a) {
    double n = 0.0, g = 0.0;
    if (a % 2 == 0) {
      n = time_batches_us(batch_instance, op_noop, kBatchReps, checksum);
      g = time_batches_us(batch_instance, op_guarded, kBatchReps, checksum);
    } else {
      g = time_batches_us(batch_instance, op_guarded, kBatchReps, checksum);
      n = time_batches_us(batch_instance, op_noop, kBatchReps, checksum);
    }
    op_noop_us = std::min(op_noop_us, n);
    op_guarded_us = std::min(op_guarded_us, g);
    op_ratios.push_back(g / n);
  }
  std::sort(op_ratios.begin(), op_ratios.end());
  const double op_overhead_pct = (op_ratios[kAttempts / 2] - 1.0) * 100.0;

  std::printf("%-28s %14.1f us/pass\n", "no-op sink (compile-time)",
              op_noop_us);
  std::printf("%-28s %14.1f us/pass\n", "guarded sink (obs disabled)",
              op_guarded_us);
  std::printf("%-28s %+14.2f %%   (accept: < 2%%)\n", "overhead",
              op_overhead_pct);
  std::printf("(checksum %.3e)\n", checksum);

  report.metric("op_noop_us_per_pass", op_noop_us);
  report.metric("op_guarded_disabled_us_per_pass", op_guarded_us);
  report.metric("op_overhead_pct", op_overhead_pct);
  report.metric("op_pass", op_overhead_pct < 2.0);

  bench::note("operator counters cost one relaxed atomic load per batch —");
  bench::note("amortized over 1024 rows, noise-level on the filter kernel.");

  // --- Durable-store per-put WAL tail --------------------------------------
  bench::heading("OBS-OVH (wal)",
                 "Disabled-telemetry overhead on the WAL record framer");
  constexpr std::size_t kWalRecords = 4096;
  constexpr int kWalReps = 20;
  report.config("wal_records", std::int64_t{kWalRecords});

  const WalInstance wal_instance{kWalRecords};
  WalNoopSink wal_noop;
  WalGuardedSink wal_guarded;
  (void)time_wal_us(wal_instance, wal_noop, 1, checksum);  // warm caches

  std::vector<double> wal_ratios;
  double wal_noop_us = 1e300, wal_guarded_us = 1e300;
  wal_ratios.reserve(kAttempts);
  for (int a = 0; a < kAttempts; ++a) {
    double n = 0.0, g = 0.0;
    if (a % 2 == 0) {
      n = time_wal_us(wal_instance, wal_noop, kWalReps, checksum);
      g = time_wal_us(wal_instance, wal_guarded, kWalReps, checksum);
    } else {
      g = time_wal_us(wal_instance, wal_guarded, kWalReps, checksum);
      n = time_wal_us(wal_instance, wal_noop, kWalReps, checksum);
    }
    wal_noop_us = std::min(wal_noop_us, n);
    wal_guarded_us = std::min(wal_guarded_us, g);
    wal_ratios.push_back(g / n);
  }
  std::sort(wal_ratios.begin(), wal_ratios.end());
  const double wal_overhead_pct = (wal_ratios[kAttempts / 2] - 1.0) * 100.0;

  std::printf("%-28s %14.1f us/pass\n", "no-op sink (compile-time)",
              wal_noop_us);
  std::printf("%-28s %14.1f us/pass\n", "guarded sink (obs disabled)",
              wal_guarded_us);
  std::printf("%-28s %+14.2f %%   (accept: < 2%%)\n", "overhead",
              wal_overhead_pct);
  std::printf("(checksum %.3e)\n", checksum);

  report.metric("wal_noop_us_per_pass", wal_noop_us);
  report.metric("wal_guarded_disabled_us_per_pass", wal_guarded_us);
  report.metric("wal_overhead_pct", wal_overhead_pct);
  report.metric("wal_pass", wal_overhead_pct < 2.0);

  bench::note("the storage.wal_appends mirror costs one relaxed atomic load");
  bench::note("per put — noise-level next to the CRC32C frame encode.");

  // --- SIMD selection-scan per-batch tail -----------------------------------
  // Cache-resident sizing on purpose: this is the regime where the kernel
  // is fastest (GRows/s, not DRAM bandwidth) and the per-batch tail is
  // therefore proportionally largest — the hardest version of the <2% bar.
  // (A DRAM-streaming sweep would evict the g_enabled line between batches
  // and measure the cache miss, not the shipping guard.)
  bench::heading("OBS-OVH (simd)",
                 "Disabled-telemetry overhead on the SIMD selection scan");
  constexpr std::size_t kSimdRows = 1 << 14;
  constexpr std::size_t kSimdBatch = 1024;
  constexpr int kSimdReps = 500;
  report.config("simd_rows", std::int64_t{kSimdRows});
  report.config("simd_batch", std::int64_t{kSimdBatch});
  report.config("simd_isa", accel::simd::to_string(accel::simd::active_isa()));

  const SimdInstance simd_instance{kSimdRows, kSimdBatch};
  SimdNoopSink simd_noop;
  SimdGuardedSink simd_guarded;
  (void)time_simd_us(simd_instance, simd_noop, 1, checksum);  // warm caches

  std::vector<double> simd_ratios;
  double simd_noop_us = 1e300, simd_guarded_us = 1e300;
  simd_ratios.reserve(kAttempts);
  for (int a = 0; a < kAttempts; ++a) {
    double n = 0.0, g = 0.0;
    if (a % 2 == 0) {
      n = time_simd_us(simd_instance, simd_noop, kSimdReps, checksum);
      g = time_simd_us(simd_instance, simd_guarded, kSimdReps, checksum);
    } else {
      g = time_simd_us(simd_instance, simd_guarded, kSimdReps, checksum);
      n = time_simd_us(simd_instance, simd_noop, kSimdReps, checksum);
    }
    simd_noop_us = std::min(simd_noop_us, n);
    simd_guarded_us = std::min(simd_guarded_us, g);
    simd_ratios.push_back(g / n);
  }
  std::sort(simd_ratios.begin(), simd_ratios.end());
  const double simd_overhead_pct = (simd_ratios[kAttempts / 2] - 1.0) * 100.0;

  std::printf("%-28s %14.1f us/pass  (%s kernel)\n",
              "no-op sink (compile-time)", simd_noop_us,
              accel::simd::to_string(accel::simd::active_isa()));
  std::printf("%-28s %14.1f us/pass\n", "guarded sink (obs disabled)",
              simd_guarded_us);
  std::printf("%-28s %+14.2f %%   (accept: < 2%%)\n", "overhead",
              simd_overhead_pct);
  std::printf("(checksum %.3e)\n", checksum);

  report.metric("simd_noop_us_per_pass", simd_noop_us);
  report.metric("simd_guarded_disabled_us_per_pass", simd_guarded_us);
  report.metric("simd_overhead_pct", simd_overhead_pct);
  report.metric("simd_pass", simd_overhead_pct < 2.0);
  report.metric("all_pass", overhead_pct < 2.0 && op_overhead_pct < 2.0 &&
                                wal_overhead_pct < 2.0 &&
                                simd_overhead_pct < 2.0);

  bench::note("the accel.simd_rows mirror costs one relaxed atomic load per");
  bench::note("1024-row batch — noise-level even on the widest-vector scan.");
  return 0;
}

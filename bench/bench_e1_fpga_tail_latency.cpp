// E1 — FPGA offload cuts search tail latency (paper Sec I, citation [4]:
// Microsoft Catapult reports a 29% reduction for Bing ranking).
//
// A 16-server search tier receives Poisson traffic; the ranking stage is
// either on the CPU (high service-time variance) or offloaded to the FPGA
// (2.5x faster, near-deterministic). Expected shape: p99 falls by roughly a
// quarter to a half across moderate loads, and the win grows with load.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "workloads/search_service.hpp"

int main(int argc, char** argv) {
  using namespace rb;
  bench::heading("E1", "Search-tier tail latency: CPU vs FPGA-offloaded ranking");
  bench::Report report{"e1_fpga_tail_latency", argc, argv};

  const auto cpu_dev = node::find_device(node::DeviceKind::kCpu);
  const auto fpga_dev = node::find_device(node::DeviceKind::kFpga);

  workloads::SearchTierParams base;
  base.queries = 60'000;

  // Capacity of the CPU configuration defines the load axis.
  const auto probe = workloads::simulate_search_tier(cpu_dev, base);
  const double cpu_capacity = probe.offered_qps / probe.utilization;
  report.config("queries", std::uint64_t{base.queries});
  report.config("cpu_capacity_qps", cpu_capacity);

  std::printf("%-8s %10s %10s %10s %10s %12s\n", "load", "cpu p50", "cpu p99",
              "fpga p50", "fpga p99", "p99 cut");
  std::printf("%-8s %10s %10s %10s %10s %12s\n", "", "(ms)", "(ms)", "(ms)",
              "(ms)", "(%)");
  for (const double load : {0.3, 0.5, 0.6, 0.7, 0.8, 0.85}) {
    auto params = base;
    params.arrival_qps = load * cpu_capacity;
    const auto cpu = workloads::simulate_search_tier(cpu_dev, params);
    const auto fpga = workloads::simulate_search_tier(fpga_dev, params);
    const double cut = (1.0 - fpga.p99_ms / cpu.p99_ms) * 100.0;
    std::printf("%-8.2f %10.2f %10.2f %10.2f %10.2f %12.1f\n", load,
                cpu.p50_ms, cpu.p99_ms, fpga.p50_ms, fpga.p99_ms, cut);
    char key[32];
    std::snprintf(key, sizeof key, "load.%03d", static_cast<int>(load * 100));
    const std::string prefix = key;
    report.metric(prefix + ".cpu_p50_ms", cpu.p50_ms);
    report.metric(prefix + ".cpu_p99_ms", cpu.p99_ms);
    report.metric(prefix + ".fpga_p50_ms", fpga.p50_ms);
    report.metric(prefix + ".fpga_p99_ms", fpga.p99_ms);
    report.metric(prefix + ".p99_cut_pct", cut);
  }
  bench::note("paper shape: ~29% p99 reduction (Catapult/Bing) at the");
  bench::note("operating load; offload also buys ~2x throughput headroom.");
  return 0;
}

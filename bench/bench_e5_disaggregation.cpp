// E5 — disaggregating the datacenter "facilitates regular upgrades and
// potentially eliminates the need and cost of replacing entire servers"
// (paper Sec IV.A.3).
//
// Part 1: resource stranding — a mixed job population is packed onto
// converged servers (FFD vector bin packing) vs composable pools.
// Part 2: 6-year rolling-upgrade TCO with 20% annual demand growth.
// Expected shape: pools strand far less memory/storage; composable capex
// total undercuts whole-server refresh over the horizon.

#include <cstdio>

#include "bench_util.hpp"
#include "net/disagg.hpp"
#include "sim/random.hpp"

int main() {
  using namespace rb;
  bench::heading("E5", "Converged servers vs composable (disaggregated) pools");

  sim::Rng rng{2016};
  std::vector<net::ResourceVector> jobs;
  for (int i = 0; i < 400; ++i) {
    if (rng.chance(0.5)) {
      jobs.push_back({rng.uniform(8.0, 30.0), rng.uniform(16.0, 64.0),
                      rng.uniform(0.1, 1.0)});
    } else {
      jobs.push_back({rng.uniform(1.0, 6.0), rng.uniform(100.0, 250.0),
                      rng.uniform(0.5, 4.0)});
    }
  }

  const net::ServerShape shape;
  const auto packed = net::pack_converged(jobs, shape);
  const auto pools = net::pack_disaggregated(jobs);

  std::printf("-- stranding (fraction of provisioned capacity unused) --\n");
  std::printf("%-14s %10s %10s %10s\n", "fleet", "cores", "memory", "storage");
  std::printf("%-14s %10.1f%% %9.1f%% %9.1f%%\n", "converged",
              packed.stranded_cores() * 100.0, packed.stranded_mem() * 100.0,
              packed.stranded_storage() * 100.0);
  const auto frac = [](double used, double prov) {
    return (prov - used) / prov * 100.0;
  };
  std::printf("%-14s %10.1f%% %9.1f%% %9.1f%%\n", "composable",
              frac(pools.used.cores, pools.provisioned.cores),
              frac(pools.used.mem_gib, pools.provisioned.mem_gib),
              frac(pools.used.storage_tib, pools.provisioned.storage_tib));
  std::printf("converged servers: %zu; composable sleds: %zu cpu / %zu mem / %zu sto\n",
              packed.servers, pools.cpu_sleds, pools.mem_sleds,
              pools.storage_sleds);

  std::printf("\n-- 6-year rolling-upgrade capex (20%% annual growth) --\n");
  const auto tco = net::simulate_upgrades(jobs, shape, net::DisaggParams{});
  std::printf("%-6s %16s %16s\n", "year", "converged ($)", "composable ($)");
  for (std::size_t y = 0; y < tco.converged_capex_by_year.size(); ++y) {
    std::printf("%-6zu %16.0f %16.0f\n", y, tco.converged_capex_by_year[y],
                tco.disagg_capex_by_year[y]);
  }
  std::printf("%-6s %16.0f %16.0f   (composable saves %.1f%%)\n", "total",
              tco.converged_total, tco.disagg_total,
              (1.0 - tco.disagg_total / tco.converged_total) * 100.0);
  bench::note("paper shape: composable strands less and avoids whole-server");
  bench::note("replacement spikes on the CPU refresh cadence.");
  return 0;
}

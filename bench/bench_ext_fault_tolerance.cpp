// EXT-FT — fault tolerance as a measurable curve. The roadmap argues for
// multipath DC fabrics (fat-tree, leaf-spine) because hyperscale operation
// makes component failure the steady state; this bench turns that argument
// into numbers. (1) An all-to-all shuffle on fat-tree vs leaf-spine under
// increasing link/switch failure rates: flows rerouted around failures vs
// flows lost, goodput, and makespan stretch. (2) A job mix on a cluster
// whose machines flap at increasing rates: retries, job availability and
// task goodput from the scheduler's recovery path (kill -> backoff ->
// re-queue, capped attempts).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dataflow/plan.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sched/cluster.hpp"
#include "sched/engine.hpp"
#include "sched/policies.hpp"
#include "sim/simulator.hpp"

namespace {

struct ShuffleUnderChaos {
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rerouted = 0;
  double goodput = 0.0;       // completed / started
  double makespan_s = 0.0;    // last completion among surviving flows
};

ShuffleUnderChaos run_chaos_shuffle(rb::net::Topology topo,
                                    rb::sim::Bytes bytes_per_pair,
                                    double link_mtbf_s, double switch_mtbf_s,
                                    std::uint64_t seed) {
  using namespace rb;
  sim::Simulator sim;
  net::Router router{topo};
  net::FlowSimulator fabric{sim, topo, router};

  faults::FailureRates rates;
  rates.link_mtbf_s = link_mtbf_s;
  rates.link_mttr_s = 0.5;
  rates.switch_mtbf_s = switch_mtbf_s;
  rates.switch_mttr_s = 1.0;
  faults::FaultPlan plan;
  if (link_mtbf_s > 0.0 || switch_mtbf_s > 0.0) {
    plan = faults::make_random_fault_plan(topo, rates, 120 * sim::kSecond,
                                          seed);
  }
  faults::FaultInjector injector{sim, topo, std::move(plan)};
  injector.attach(fabric);
  injector.arm();

  ShuffleUnderChaos out;
  sim::SimTime last = 0;
  const auto hosts = topo.nodes_of_kind(net::NodeKind::kHost);
  for (const auto src : hosts) {
    for (const auto dst : hosts) {
      if (src == dst) continue;
      try {
        fabric.start_flow(src, dst, bytes_per_pair,
                          [&last](const net::FlowRecord& r) {
                            if (r.outcome == net::FlowOutcome::kCompleted)
                              last = std::max(last, r.finish);
                          });
      } catch (const net::NoRouteError&) {
        // partitioned at start: counts as never started
      }
    }
  }
  sim.run();
  out.started = fabric.started_flows();
  out.completed = fabric.completed_flows();
  out.failed = fabric.failed_flows();
  out.rerouted = fabric.rerouted_flows();
  out.goodput = out.started == 0
                    ? 0.0
                    : static_cast<double>(out.completed) /
                          static_cast<double>(out.started);
  out.makespan_s = rb::sim::to_seconds(last);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rb;
  bench::heading("EXT-FT", "Fault injection & recovery across the stack");
  bench::Report report{"ext_fault_tolerance", argc, argv};
  report.config("shuffle_bytes_per_pair", std::uint64_t{20 * sim::kMiB});
  report.config("seed", std::uint64_t{0xFA57});

  // --- Part 1: fabric resilience, fat-tree vs leaf-spine -----------------
  // Comparable scale: k=4 fat tree -> 16 hosts, 20 switches;
  // leaf-spine 4x4 with 4 hosts/leaf -> 16 hosts, 8 switches.
  std::printf("-- all-to-all shuffle (16 hosts, 20 MiB/pair), goodput vs "
              "failure rate --\n");
  std::printf("   MTBF per link / per switch; MTTR 0.5 s / 1.0 s; seeded\n\n");
  std::printf("%-22s %-10s %8s %8s %8s %9s %12s\n", "failure rate", "topo",
              "flows", "rerouted", "failed", "goodput", "makespan(s)");
  struct Rate {
    const char* label;
    double link_mtbf_s;
    double switch_mtbf_s;
  };
  struct RatePoint {
    const char* label;
    const char* key;
    double link_mtbf_s;
    double switch_mtbf_s;
  };
  const RatePoint rate_points[] = {
      {"none", "none", 0.0, 0.0},
      {"low   (600s/1200s)", "low", 600.0, 1200.0},
      {"medium (60s/120s)", "medium", 60.0, 120.0},
      {"high   (10s/20s)", "high", 10.0, 20.0},
      {"extreme (2s/5s)", "extreme", 2.0, 5.0},
  };
  for (const auto& rate : rate_points) {
    for (int t = 0; t < 2; ++t) {
      const bool fat = t == 0;
      auto topo = fat ? net::make_fat_tree(4)
                      : net::make_leaf_spine(4, 4, 4);
      const auto r = run_chaos_shuffle(std::move(topo), 20 * sim::kMiB,
                                       rate.link_mtbf_s, rate.switch_mtbf_s,
                                       0xFA57);
      std::printf("%-22s %-10s %8llu %8llu %8llu %8.1f%% %12.2f\n",
                  rate.label, fat ? "fat-tree" : "leaf-spine",
                  static_cast<unsigned long long>(r.started),
                  static_cast<unsigned long long>(r.rerouted),
                  static_cast<unsigned long long>(r.failed),
                  r.goodput * 100.0, r.makespan_s);
      const std::string prefix = std::string{"shuffle."} + rate.key + "." +
                                 (fat ? "fat_tree" : "leaf_spine");
      report.metric(prefix + ".goodput", r.goodput);
      report.metric(prefix + ".rerouted", r.rerouted);
      report.metric(prefix + ".failed", r.failed);
      report.metric(prefix + ".makespan_s", r.makespan_s);
    }
  }
  bench::note("multipath pays off: reroutes absorb most outages; goodput");
  bench::note("degrades only when failures outpace the path diversity.");

  // --- Part 2: scheduler recovery under machine churn --------------------
  std::printf("\n-- job mix on 8 machines, machine churn sweep (MTTR 0.5 s) "
              "--\n");
  std::printf("%-16s %10s %8s %8s %8s %9s %13s %12s\n", "machine MTBF",
              "dispatch", "retried", "killed", "jobsF", "goodput",
              "availability", "makespan(s)");
  const double mtbf_points[] = {0.0, 120.0, 30.0, 8.0, 2.0};
  for (const double mtbf : mtbf_points) {
    const auto cluster = sched::make_cpu_cluster(8, 2);
    auto topo = net::make_leaf_spine(2, 4, 2);  // 8 hosts, one per machine
    std::vector<sched::JobArrival> jobs;
    jobs.push_back({dataflow::make_wordcount_job(4 * sim::kGiB, 32), 0});
    jobs.push_back({dataflow::make_join_job(2 * sim::kGiB, sim::kGiB, 16),
                    sim::kSecond});
    jobs.push_back({dataflow::make_kmeans_job(sim::kGiB, 4, 12),
                    2 * sim::kSecond});

    faults::FaultPlan plan;
    if (mtbf > 0.0) {
      plan = faults::make_random_machine_plan(8, mtbf, 0.5,
                                              300 * sim::kSecond, 0xFA57);
    }
    sched::FifoPolicy policy;
    sched::EngineParams params;
    params.fault_plan = &plan;
    params.fabric = &topo;
    params.max_attempts = 5;
    params.retry_backoff = 20 * sim::kMillisecond;
    const auto r = sched::run_jobs(cluster, std::move(jobs), policy, params);

    char label[32];
    if (mtbf <= 0.0) {
      std::snprintf(label, sizeof label, "none");
    } else {
      std::snprintf(label, sizeof label, "%.0f s", mtbf);
    }
    std::printf("%-16s %10llu %8llu %8llu %8llu %8.1f%% %12.1f%% %12.2f\n",
                label,
                static_cast<unsigned long long>(r.tasks_dispatched),
                static_cast<unsigned long long>(r.tasks_retried),
                static_cast<unsigned long long>(r.tasks_killed_by_failure),
                static_cast<unsigned long long>(r.jobs_failed),
                r.goodput() * 100.0, r.job_availability() * 100.0,
                sim::to_seconds(r.makespan));
    char key[48];
    std::snprintf(key, sizeof key, "churn.mtbf_%.0fs", mtbf);
    const std::string prefix = mtbf <= 0.0 ? "churn.none" : key;
    report.metric(prefix + ".retried", r.tasks_retried);
    report.metric(prefix + ".killed", r.tasks_killed_by_failure);
    report.metric(prefix + ".goodput", r.goodput());
    report.metric(prefix + ".availability", r.job_availability());
    report.metric(prefix + ".makespan_s", sim::to_seconds(r.makespan));
  }
  bench::note("shape: retries keep availability high until churn approaches");
  bench::note("task duration; then goodput collapses and jobs start failing —");
  bench::note("the resilience curve the roadmap's fabric argument implies.");
  return 0;
}

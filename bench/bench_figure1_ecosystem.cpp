// F1 — reproduces Figure 1 of the paper (the ETP/PPP collaboration
// landscape) from the structured registry (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.hpp"
#include "roadmap/report.hpp"

int main() {
  rb::bench::heading("F1", "ETP/PPP collaboration landscape (paper Figure 1)");
  std::printf("%s\n", rb::roadmap::render_ecosystem_figure().c_str());
  return 0;
}

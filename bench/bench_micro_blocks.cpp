// Micro-benchmarks (google-benchmark) of the real CPU building-block
// implementations backing E2/E10: selection scan, radix hash join,
// radix/parallel sort, group aggregation, k-means, Aho-Corasick matching.
// Includes the radix-partitioning ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include "accel/aggregate.hpp"
#include "accel/gemm.hpp"
#include "accel/hash_join.hpp"
#include "accel/ml.hpp"
#include "accel/scan.hpp"
#include "accel/sort.hpp"
#include "accel/text.hpp"
#include "sim/random.hpp"
#include "storage/lsm.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace rb;

std::vector<std::int64_t> scan_data(std::size_t n) {
  sim::Rng rng{1};
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.uniform_index(1'000'000));
  return v;
}

void BM_SelectScan(benchmark::State& state) {
  const auto data = scan_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::count_between(data, 0, 100'000));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectScan)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashJoin(benchmark::State& state) {
  const auto tables = workloads::order_tables(
      static_cast<std::size_t>(state.range(0)), 4.0, 0.6, 2);
  accel::JoinParams params;
  params.radix_bits = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        accel::hash_join_count(tables.orders, tables.lineitems, params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tables.lineitems.size()));
}
// Ablation: radix partitioning (6 bits) vs single global table (0 bits).
// Partitioning only pays once the build side outgrows the cache hierarchy
// (the largest size below); on cache-resident inputs it is pure overhead.
BENCHMARK(BM_HashJoin)->Args({1 << 14, 0})->Args({1 << 14, 6})
    ->Args({1 << 17, 0})->Args({1 << 17, 6})
    ->Args({1 << 21, 0})->Args({1 << 21, 6});

void BM_RadixSort(benchmark::State& state) {
  sim::Rng rng{3};
  std::vector<std::uint64_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& k : base) k = rng();
  for (auto _ : state) {
    auto keys = base;
    accel::radix_sort(keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  sim::Rng rng{4};
  std::vector<std::uint64_t> base(static_cast<std::size_t>(state.range(0)));
  for (auto& k : base) k = rng();
  dataflow::ThreadPool pool;
  for (auto _ : state) {
    auto keys = base;
    accel::parallel_sort(keys, pool);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 20);

void BM_GroupAggregate(benchmark::State& state) {
  sim::Rng rng{5};
  std::vector<accel::Row> rows(static_cast<std::size_t>(state.range(0)));
  for (auto& r : rows) {
    r = accel::Row{rng.uniform_index(1000), rng.uniform_index(100)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::group_aggregate(rows, accel::AggOp::kSum));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupAggregate)->Arg(1 << 16)->Arg(1 << 20);

void BM_KMeansIteration(benchmark::State& state) {
  const auto data = workloads::gaussian_blobs(
      static_cast<std::size_t>(state.range(0)), 8, 8, 1.0, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::kmeans(data.points, 8, 2, 6));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeansIteration)->Arg(1 << 12)->Arg(1 << 14);

void BM_PatternMatch(benchmark::State& state) {
  const auto lines =
      workloads::web_log(static_cast<std::size_t>(state.range(0)), 7);
  const accel::PatternMatcher matcher{workloads::incident_patterns()};
  std::size_t bytes = 0;
  for (const auto& l : lines) bytes += l.size();
  for (auto _ : state) {
    std::uint64_t hits = 0;
    for (const auto& line : lines) hits += matcher.count_matches(line);
    benchmark::DoNotOptimize(hits);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PatternMatch)->Arg(1 << 12)->Arg(1 << 15);

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{8};
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    accel::gemm_naive(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNaive)->Arg(128)->Arg(384);

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{8};
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    accel::gemm_blocked(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
// Cache-blocking ablation twin of BM_GemmNaive.
BENCHMARK(BM_GemmBlocked)->Arg(128)->Arg(384);

void BM_LsmPut(benchmark::State& state) {
  sim::Rng rng{9};
  for (auto _ : state) {
    storage::LsmStore store;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      store.put("key" + std::to_string(rng.uniform_index(1 << 16)),
                std::string(64, 'v'));
    }
    benchmark::DoNotOptimize(store.stats().flushes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LsmPut)->Arg(1 << 12)->Arg(1 << 15);

void BM_LsmGet(benchmark::State& state) {
  sim::Rng rng{10};
  storage::LsmStore store;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    store.put("key" + std::to_string(i), std::string(64, 'v'));
  }
  for (auto _ : state) {
    const auto key =
        "key" + std::to_string(rng.uniform_index(
                    static_cast<std::uint64_t>(state.range(0)) * 2));
    benchmark::DoNotOptimize(store.get(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmGet)->Arg(1 << 15);

void BM_Tokenize(benchmark::State& state) {
  const auto doc = workloads::zipf_document(
      static_cast<std::size_t>(state.range(0)), 50'000, 1.05, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::tokenize(doc));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_Tokenize)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace

BENCHMARK_MAIN();

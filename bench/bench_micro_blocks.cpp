// MICRO-BLOCKS — gated micro-benchmarks of the CPU building blocks.
//
// Section 1 sweeps the dispatched SIMD kernels (selection scan, hash-probe,
// selected-sum) across every ISA level this CPU reaches, on 64-byte-aligned
// cache-resident inputs. Section 2 reports the headline tuned-vs-scalar
// gaps through accel::simd::measure_* — the same numbers E2/E8 consume.
// Section 3 (full mode only) times the remaining blocks backing E2/E10:
// radix hash join (partitioning ablation), radix sort, group aggregation,
// blocked GEMM, Aho-Corasick matching, tokenization.
//
// In --quick mode the bench gates on the SIMD layer earning its keep:
// selection scan >= 4x and join probe >= 3x over scalar, exiting 1 on a
// miss. The gate arms only on AVX2/AVX-512 hosts (NEON runs 2 lanes and
// the scalar probe; the big-ratio contract is an x86-wide-vector claim)
// and is report-only under sanitizer builds, whose per-access
// instrumentation distorts kernel ratios.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "accel/aggregate.hpp"
#include "accel/gemm.hpp"
#include "accel/hash_join.hpp"
#include "accel/scan.hpp"
#include "accel/simd/measure.hpp"
#include "accel/simd/simd.hpp"
#include "accel/sort.hpp"
#include "accel/text.hpp"
#include "bench_util.hpp"
#include "sim/random.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace rb;
namespace simd = accel::simd;

#if defined(RB_SANITIZED)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

/// Rows per kernel invocation: cache-resident on purpose. The kernels are
/// compute-bound there; at DRAM-resident sizes every ISA converges on
/// memory bandwidth and the sweep measures the machine, not the code.
constexpr std::size_t kRows = 16384;

template <typename Fn>
double best_ms(int attempts, Fn&& fn) {
  double best = 1e300;
  for (int a = 0; a < attempts; ++a) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < best) best = ms;
  }
  return best;
}

/// 64-byte-aligned buffer: an unaligned 64B vector load splits two cache
/// lines and halves effective L1 bandwidth on this class of core.
template <typename T>
struct Aligned {
  explicit Aligned(std::size_t n)
      : p{static_cast<T*>(
            std::aligned_alloc(64, ((n * sizeof(T) + 63) / 64) * 64))},
        size{n} {}
  ~Aligned() { std::free(p); }
  Aligned(const Aligned&) = delete;
  Aligned& operator=(const Aligned&) = delete;
  T* p;
  std::size_t size;
};

std::vector<simd::Isa> reachable_isas() {
  std::vector<simd::Isa> out{simd::Isa::kScalar};
  for (const simd::Isa isa :
       {simd::Isa::kAvx2, simd::Isa::kAvx512, simd::Isa::kNeon}) {
    if (simd::supported(isa)) out.push_back(isa);
  }
  return out;
}

/// Per-ISA kernel sweep: GRows/s for the three scan-side kernels.
void sweep_isas(bench::Report& report) {
  Aligned<std::int64_t> values{kRows};
  Aligned<std::uint32_t> sel{kRows};
  sim::Rng rng{11};
  for (std::size_t i = 0; i < kRows; ++i) {
    values.p[i] = static_cast<std::int64_t>(rng.uniform_index(1000));
  }
  const std::size_t m_all =
      simd::scalar_kernels().select_between(values.p, kRows, 250, 750, sel.p);
  const int reps = static_cast<int>((1u << 22) / kRows) + 1;

  std::printf("  %-8s %14s %14s %14s\n", "isa", "select GR/s", "count GR/s",
              "sum GR/s");
  const simd::Isa entry = simd::active_isa();
  for (const simd::Isa isa : reachable_isas()) {
    simd::set_isa(isa);
    const auto& k = simd::kernels();
    volatile std::uint64_t sink = 0;
    const double sel_ms = best_ms(5, [&] {
                            std::uint64_t acc = 0;
                            for (int r = 0; r < reps; ++r) {
                              acc += k.select_between(values.p, kRows, 250,
                                                      750, sel.p);
                            }
                            sink = acc;
                          }) /
                          reps;
    const double cnt_ms = best_ms(5, [&] {
                            std::uint64_t acc = 0;
                            for (int r = 0; r < reps; ++r) {
                              acc += k.count_between(values.p, kRows, 250,
                                                     750);
                            }
                            sink = acc;
                          }) /
                          reps;
    const double sum_ms =
        best_ms(5, [&] {
          std::uint64_t acc = 0;
          for (int r = 0; r < reps; ++r) {
            acc += static_cast<std::uint64_t>(
                k.sum_selected(values.p, sel.p, m_all));
          }
          sink = acc;
        }) /
        reps;
    (void)sink;
    const auto grows = [](std::size_t rows, double ms) {
      return static_cast<double>(rows) / (ms * 1e6);
    };
    std::printf("  %-8s %14.2f %14.2f %14.2f\n", simd::to_string(isa),
                grows(kRows, sel_ms), grows(kRows, cnt_ms),
                grows(m_all, sum_ms));
    const std::string tag = std::string{"isa."} + simd::to_string(isa);
    report.metric(tag + ".select_grows", grows(kRows, sel_ms));
    report.metric(tag + ".count_grows", grows(kRows, cnt_ms));
    report.metric(tag + ".sum_grows", grows(m_all, sum_ms));
  }
  simd::set_isa(entry);
}

/// Full-mode block timings (the pre-SIMD micro-benchmark set).
void bench_blocks(bench::Report& report) {
  std::printf("\n  building blocks (best of 3):\n");
  const auto record = [&report](const char* name, double ms,
                                double items_per_ms) {
    std::printf("    %-22s %10.3f ms %12.1f Kitems/s\n", name, ms,
                items_per_ms);
    report.metric(std::string{"blocks."} + name + ".ms", ms);
  };

  {
    const auto tables = workloads::order_tables(1 << 17, 4.0, 0.6, 2);
    for (const int bits : {0, 6}) {
      accel::JoinParams params;
      params.radix_bits = bits;
      volatile std::uint64_t sink = 0;
      const double ms = best_ms(3, [&] {
        sink = accel::hash_join_count(tables.orders, tables.lineitems,
                                      params);
      });
      (void)sink;
      record(bits == 0 ? "hash_join(radix=0)" : "hash_join(radix=6)", ms,
             static_cast<double>(tables.lineitems.size()) / ms);
    }
  }
  {
    sim::Rng rng{3};
    std::vector<std::uint64_t> base(1 << 20);
    for (auto& k : base) k = rng();
    const double ms = best_ms(3, [&base] {
      auto keys = base;
      accel::radix_sort(keys);
    });
    record("radix_sort(1M)", ms, static_cast<double>(base.size()) / ms);
  }
  {
    sim::Rng rng{5};
    std::vector<accel::Row> rows(1 << 20);
    for (auto& r : rows) {
      r = accel::Row{rng.uniform_index(1000), rng.uniform_index(100)};
    }
    volatile std::size_t sink = 0;
    const double ms = best_ms(3, [&] {
      sink = accel::group_aggregate(rows, accel::AggOp::kSum).size();
    });
    (void)sink;
    record("group_aggregate(1M)", ms, static_cast<double>(rows.size()) / ms);
  }
  {
    const std::size_t n = 128;
    sim::Rng rng{8};
    std::vector<float> a(n * n), b(n * n), c(n * n);
    for (auto& x : a) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& x : b) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const double naive_ms =
        best_ms(3, [&] { accel::gemm_naive(a, b, c, n, n, n); });
    const double blocked_ms =
        best_ms(3, [&] { accel::gemm_blocked(a, b, c, n, n, n); });
    record("gemm_naive(128)", naive_ms,
           static_cast<double>(2 * n * n * n) / naive_ms);
    record("gemm_blocked(128)", blocked_ms,
           static_cast<double>(2 * n * n * n) / blocked_ms);
  }
  {
    const auto lines = workloads::web_log(1 << 12, 7);
    const accel::PatternMatcher matcher{workloads::incident_patterns()};
    volatile std::uint64_t sink = 0;
    const double ms = best_ms(3, [&] {
      std::uint64_t hits = 0;
      for (const auto& line : lines) hits += matcher.count_matches(line);
      sink = hits;
    });
    (void)sink;
    record("pattern_match(4K)", ms, static_cast<double>(lines.size()) / ms);
  }
  {
    const auto doc = workloads::zipf_document(1 << 14, 50'000, 1.05, 8);
    volatile std::size_t sink = 0;
    const double ms = best_ms(3, [&] { sink = accel::tokenize(doc).size(); });
    (void)sink;
    record("tokenize(16KB)", ms, static_cast<double>(doc.size()) / ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::Report report{"micro_blocks", argc, argv};
  report.config("quick", quick);
  report.config("sanitized", kSanitized);
  report.config("best_isa", simd::to_string(simd::best_supported()));
  report.config("active_isa", simd::to_string(simd::active_isa()));

  bench::heading("MICRO-BLOCKS",
                 "SIMD kernel layer + CPU building blocks (gated)");
  std::printf("  active isa: %s, best supported: %s%s\n",
              simd::to_string(simd::active_isa()),
              simd::to_string(simd::best_supported()),
              kSanitized ? " (sanitized: gates report-only)" : "");

  std::printf("\n  per-ISA kernel sweep (%zu rows, 64B-aligned):\n", kRows);
  sweep_isas(report);

  // Headline tuned-vs-scalar gaps — the numbers the --quick gate pins and
  // bench_e2/e8 consume. speedup defaults to 1.0 on scalar-only hosts so
  // the telemetry contract (scan.speedup/probe.speedup present) holds
  // everywhere.
  double scan_speedup = 1.0;
  double probe_speedup = 1.0;
  std::printf("\n  tuned vs scalar (best of 7, %zu rows):\n", kRows);
  if (const auto scan = simd::measure_select_scan(kRows)) {
    scan_speedup = scan->speedup;
    std::printf("    selection scan   %-7s %8.4f ms -> %8.4f ms  %6.2fx\n",
                simd::to_string(scan->isa), scan->scalar_ms, scan->tuned_ms,
                scan->speedup);
    report.metric("scan.scalar_ms", scan->scalar_ms);
    report.metric("scan.tuned_ms", scan->tuned_ms);
  } else {
    std::printf("    selection scan   no SIMD unit usable (scalar host)\n");
  }
  if (const auto probe = simd::measure_join_probe(kRows)) {
    probe_speedup = probe->speedup;
    std::printf("    hash-join probe  %-7s %8.4f ms -> %8.4f ms  %6.2fx\n",
                simd::to_string(probe->isa), probe->scalar_ms,
                probe->tuned_ms, probe->speedup);
    report.metric("probe.scalar_ms", probe->scalar_ms);
    report.metric("probe.tuned_ms", probe->tuned_ms);
  } else {
    std::printf("    hash-join probe  no SIMD unit usable (scalar host)\n");
  }
  report.metric("scan.speedup", scan_speedup);
  report.metric("probe.speedup", probe_speedup);

  if (!quick) bench_blocks(report);

  // The gate arms on wide-vector x86 hosts only; NEON's 2-lane kernels and
  // scalar probe can't (and don't claim to) hit these ratios.
  const bool wide_x86 = simd::best_supported() == simd::Isa::kAvx2 ||
                        simd::best_supported() == simd::Isa::kAvx512;
  const bool gate_armed = quick && wide_x86 && !kSanitized;
  const bool scan_ok = !gate_armed || scan_speedup >= 4.0;
  const bool probe_ok = !gate_armed || probe_speedup >= 3.0;
  const bool pass = scan_ok && probe_ok;

  if (gate_armed) {
    std::printf("\n  quick gates: scan >= 4x (%.2fx %s), probe >= 3x "
                "(%.2fx %s)\n",
                scan_speedup, scan_ok ? "ok" : "MISS", probe_speedup,
                probe_ok ? "ok" : "MISS");
  } else if (quick) {
    std::printf("\n  quick gates: skipped (%s)\n",
                kSanitized ? "sanitized build" : "no wide x86 SIMD unit");
  }
  if (!pass) {
    std::printf("  PERF REGRESSION: SIMD kernel layer below its gate\n");
  }

  report.metric("gate_armed", gate_armed);
  report.metric("pass", pass);
  report.write();
  return pass ? 0 : 1;
}

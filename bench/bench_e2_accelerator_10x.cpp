// E2 — accelerators deliver "a factor of ten or more" on appropriate
// applications (paper Rec 4), and much less - or a slowdown - on
// data-movement-bound analytics (the ROI uncertainty of Finding 2).
//
// For every accelerated building block (Rec 10) we print the end-to-end
// node-level time on each device (PCIe + launch included) and the best
// choice. Expected shape: compute-dense blocks (inference, k-means) exceed
// 10x on ASIC/GPU; streaming blocks (scan, join) stay on the CPU.

#include <cstdio>

#include "accel/offload.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rb;
  bench::heading("E2", "Accelerated building blocks: node-level speedups (Recs 4, 10)");

  const auto catalog = node::standard_catalog();
  constexpr std::uint64_t kRows = 8'000'000;

  std::printf("%-16s", "block");
  for (const auto& d : catalog) std::printf(" %14s", d.name.c_str());
  std::printf(" %14s %8s\n", "best", "speedup");

  for (const auto block : accel::all_blocks()) {
    std::printf("%-16s", to_string(block).c_str());
    for (const auto& d : catalog) {
      if (!accel::supports(d.kind, block)) {
        std::printf(" %14s", "-");
        continue;
      }
      const auto path = d.kind == node::DeviceKind::kCpu
                            ? accel::CodePath::kDeviceTuned
                            : accel::CodePath::kDeviceTuned;
      const auto t = accel::block_time(d, block, kRows, path);
      std::printf(" %12.3fms", sim::to_milliseconds(t));
    }
    const auto best = accel::best_device(catalog, block, kRows,
                                         accel::CodePath::kDeviceTuned);
    std::printf(" %14s %7.1fx\n", best.device.name.c_str(),
                best.speedup_vs_host);
  }
  bench::note("paper shape: >=10x on compute-dense analytics blocks;");
  bench::note("PCIe-bound streaming blocks do not benefit (ROI risk).");
  return 0;
}

// E2 — accelerators deliver "a factor of ten or more" on appropriate
// applications (paper Rec 4), and much less - or a slowdown - on
// data-movement-bound analytics (the ROI uncertainty of Finding 2).
//
// For every accelerated building block (Rec 10) we print the end-to-end
// node-level time on each device (PCIe + launch included) and the best
// choice. Expected shape: compute-dense blocks (inference, k-means) exceed
// 10x on ASIC/GPU; streaming blocks (scan, join) stay on the CPU.
//
// The device table is modeled (roofline profiles); the closing section
// grounds the host column in measurement: the dispatched SIMD kernels
// (accel/simd) are timed against their scalar twins on the running CPU, so
// the "tuned host" baseline every accelerator speedup is quoted against is
// a measured number wherever a SIMD unit exists, falling back to the
// modeled constants otherwise.

#include <cstdio>

#include "accel/offload.hpp"
#include "accel/simd/measure.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rb;
  bench::heading("E2", "Accelerated building blocks: node-level speedups (Recs 4, 10)");

  const auto catalog = node::standard_catalog();
  constexpr std::uint64_t kRows = 8'000'000;

  std::printf("%-16s", "block");
  for (const auto& d : catalog) std::printf(" %14s", d.name.c_str());
  std::printf(" %14s %8s\n", "best", "speedup");

  for (const auto block : accel::all_blocks()) {
    std::printf("%-16s", to_string(block).c_str());
    for (const auto& d : catalog) {
      if (!accel::supports(d.kind, block)) {
        std::printf(" %14s", "-");
        continue;
      }
      const auto path = d.kind == node::DeviceKind::kCpu
                            ? accel::CodePath::kDeviceTuned
                            : accel::CodePath::kDeviceTuned;
      const auto t = accel::block_time(d, block, kRows, path);
      std::printf(" %12.3fms", sim::to_milliseconds(t));
    }
    const auto best = accel::best_device(catalog, block, kRows,
                                         accel::CodePath::kDeviceTuned);
    std::printf(" %14s %7.1fx\n", best.device.name.c_str(),
                best.speedup_vs_host);
  }
  bench::note("paper shape: >=10x on compute-dense analytics blocks;");
  bench::note("PCIe-bound streaming blocks do not benefit (ROI risk).");

  std::printf("\nmeasured tuned-host kernels (dispatched SIMD vs scalar twin):\n");
  const auto print_measured = [](const char* name,
                                 const std::optional<
                                     accel::simd::MeasuredKernel>& m) {
    if (m.has_value()) {
      std::printf("  %-16s %8.4f ms -> %8.4f ms  %6.2fx  (measured, %s)\n",
                  name, m->scalar_ms, m->tuned_ms, m->speedup,
                  accel::simd::to_string(m->isa));
    } else {
      std::printf("  %-16s no SIMD unit usable; modeled CPU constants apply\n",
                  name);
    }
  };
  print_measured("select-scan", accel::simd::measure_select_scan(16384));
  print_measured("hash-join probe", accel::simd::measure_join_probe(16384));
  bench::note("the tuned-CPU baseline above is real silicon wherever a SIMD");
  bench::note("unit exists - accelerator ROI is quoted against it, not a model.");
  return 0;
}

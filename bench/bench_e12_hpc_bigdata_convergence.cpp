// E12 — "take advantage of the convergence of High Performance Computing
// and Big Data interests ... encouraging dual-purpose products that bring
// these different communities together" (paper Rec 2).
//
// An HPC stencil campaign and a Big Data analytics mix run on (a) two
// dedicated half-size clusters and (b) one shared dual-purpose cluster of
// the same total hardware. Expected shape: the shared fleet finishes the
// combined workload sooner (statistical multiplexing of bursty demand) and
// at equal capex — the "sell to a bigger market, lower the risk" argument.

#include <cstdio>

#include "bench_util.hpp"
#include "sched/policies.hpp"

namespace {

using namespace rb;

std::vector<sched::JobArrival> hpc_trace() {
  // A burst of campaign jobs submitted together (the HPC batch-queue case).
  std::vector<sched::JobArrival> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({dataflow::make_stencil_job(32 * sim::kGiB, 6, 32),
                    i * sim::kSecond / 4});
  }
  return jobs;
}

std::vector<sched::JobArrival> bigdata_trace() {
  std::vector<sched::JobArrival> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({dataflow::make_wordcount_job(16 * sim::kGiB, 64),
                    i * sim::kSecond / 4});
    jobs.push_back({dataflow::make_kmeans_job(4 * sim::kGiB, 4, 16),
                    i * sim::kSecond / 4});
  }
  return jobs;
}

double run_on(const sched::Cluster& cluster,
              std::vector<sched::JobArrival> jobs) {
  sched::HeteroAwarePolicy policy;
  return sim::to_seconds(
      sched::run_jobs(cluster, std::move(jobs), policy).makespan);
}

}  // namespace

int main() {
  bench::heading("E12", "HPC / Big Data convergence: dedicated vs dual-purpose");

  const auto gpus = std::vector<node::DeviceKind>{node::DeviceKind::kGpu};
  const auto half = sched::make_hetero_cluster(4, gpus, 2, 8);
  const auto full = sched::make_hetero_cluster(8, gpus, 2, 8);

  const double hpc_dedicated = run_on(half, hpc_trace());
  const double bd_dedicated = run_on(half, bigdata_trace());

  auto combined = hpc_trace();
  for (auto& j : bigdata_trace()) combined.push_back(std::move(j));
  const double shared = run_on(full, std::move(combined));

  std::printf("%-34s %12s\n", "configuration", "makespan(s)");
  std::printf("%-34s %12.2f\n", "dedicated HPC half-cluster", hpc_dedicated);
  std::printf("%-34s %12.2f\n", "dedicated BigData half-cluster",
              bd_dedicated);
  std::printf("%-34s %12.2f\n", "dedicated total (max of the two)",
              std::max(hpc_dedicated, bd_dedicated));
  std::printf("%-34s %12.2f\n", "shared dual-purpose cluster", shared);
  std::printf("\nshared fleet speedup over dedicated split: %.2fx\n",
              std::max(hpc_dedicated, bd_dedicated) / shared);
  bench::note("paper shape: one dual-purpose fleet outperforms two siloed");
  bench::note("half-fleets on the same hardware budget.");
  return 0;
}

// E9 — "creation of dynamic scheduling and resource allocation strategies"
// for heterogeneous platforms (paper Rec 11).
//
// A mixed trace (compute-heavy ML chains, shuffle-heavy analytics, an HPC
// stencil) runs on a CPU+GPU+FPGA cluster under six policies. Expected
// shape: heterogeneity-aware scheduling shortens makespan vs FIFO/fair;
// locality-aware cuts remote fetches; energy-aware trades time for joules.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "sched/policies.hpp"
#include "workloads/trace.hpp"

namespace {

std::vector<rb::sched::JobArrival> make_trace() {
  using namespace rb;
  // A saturating mix: compute-dense ML chains (accelerator-friendly, high
  // AI), shuffle-heavy analytics (CPU/network bound), and an HPC stencil.
  std::vector<sched::JobArrival> jobs;
  jobs.push_back({dataflow::make_kmeans_job(2 * sim::kGiB, 5, 32), 0});
  jobs.push_back({dataflow::make_wordcount_job(4 * sim::kGiB, 64), 0});
  jobs.push_back({dataflow::make_join_job(sim::kGiB, sim::kGiB, 32),
                  sim::kSecond / 2});
  jobs.push_back({dataflow::make_stencil_job(2 * sim::kGiB, 4, 32),
                  sim::kSecond});
  jobs.push_back({dataflow::make_kmeans_job(sim::kGiB, 4, 16),
                  sim::kSecond});
  jobs.push_back({dataflow::make_wordcount_job(2 * sim::kGiB, 32),
                  2 * sim::kSecond});
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rb;
  bench::heading("E9", "Scheduling policies on a heterogeneous cluster (Rec 11)");
  bench::Report report{"e9_hetero_scheduling", argc, argv};
  report.config("machines", std::int64_t{4});
  report.config("cpu_slots_per_machine", std::int64_t{4});
  report.config("accelerators", "gpu+fpga on every 2nd machine");

  const auto cluster = sched::make_hetero_cluster(
      4, {node::DeviceKind::kGpu, node::DeviceKind::kFpga}, 2, 4);
  std::printf("cluster: 4 machines x 4 CPU slots; GPU+FPGA on every 2nd\n\n");

  std::vector<std::unique_ptr<sched::Policy>> policies;
  policies.push_back(std::make_unique<sched::RandomPolicy>(1));
  policies.push_back(std::make_unique<sched::FifoPolicy>());
  policies.push_back(std::make_unique<sched::FairPolicy>());
  policies.push_back(std::make_unique<sched::LocalityPolicy>());
  policies.push_back(std::make_unique<sched::DrfPolicy>());
  policies.push_back(std::make_unique<sched::EnergyAwarePolicy>());
  policies.push_back(std::make_unique<sched::HeteroAwarePolicy>());

  std::printf("%-14s %12s %12s %12s %10s %10s\n", "policy", "makespan(s)",
              "mean job(s)", "energy(kJ)", "remote", "accel util");
  for (const auto& policy : policies) {
    const auto result = sched::run_jobs(cluster, make_trace(), *policy);
    std::printf("%-14s %12.2f %12.2f %12.1f %10llu %9.1f%%\n",
                policy->name().c_str(), sim::to_seconds(result.makespan),
                result.mean_job_seconds(), result.energy / 1000.0,
                static_cast<unsigned long long>(result.remote_tasks),
                result.accel_utilization * 100.0);
    const std::string prefix = "burst." + policy->name();
    report.metric(prefix + ".makespan_s", sim::to_seconds(result.makespan));
    report.metric(prefix + ".mean_job_s", result.mean_job_seconds());
    report.metric(prefix + ".energy_kj", result.energy / 1000.0);
    report.metric(prefix + ".accel_utilization", result.accel_utilization);
  }
  // Second table: a realistic generated trace (Poisson-diurnal arrivals,
  // heavy-tailed sizes) instead of the handcrafted burst.
  workloads::TraceParams trace_params;
  trace_params.jobs = 40;
  trace_params.jobs_per_hour = 2400.0;  // compressed so the cluster queues
  trace_params.max_input = 4 * sim::kGiB;
  const auto make_generated = [&trace_params] {
    std::vector<sched::JobArrival> jobs;
    for (auto& t : workloads::generate_trace(trace_params, 2017)) {
      jobs.push_back(sched::JobArrival{std::move(t.graph), t.arrival});
    }
    return jobs;
  };

  std::printf("\n-- generated trace (40 jobs, Pareto sizes, diurnal Poisson) --\n");
  std::printf("%-14s %12s %12s %12s\n", "policy", "makespan(s)",
              "mean job(s)", "energy(kJ)");
  for (const auto& policy : policies) {
    const auto result = sched::run_jobs(cluster, make_generated(), *policy);
    std::printf("%-14s %12.2f %12.2f %12.1f\n", policy->name().c_str(),
                sim::to_seconds(result.makespan), result.mean_job_seconds(),
                result.energy / 1000.0);
    const std::string prefix = "trace." + policy->name();
    report.metric(prefix + ".makespan_s", sim::to_seconds(result.makespan));
    report.metric(prefix + ".mean_job_s", result.mean_job_seconds());
    report.metric(prefix + ".energy_kj", result.energy / 1000.0);
  }

  bench::note("paper shape: heterogeneity-aware placement wins makespan by");
  bench::note("keeping ML stages on accelerators and scans on CPUs.");
  return 0;
}

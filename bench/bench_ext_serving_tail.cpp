// EXT-SERVE — tail latency and availability of the sharded KV serving
// plane. The roadmap's low-latency argument (E1's FPGA front-ends, the
// tail-at-scale framing) only matters if the serving layer above the
// hardware keeps its tail under control; this bench measures that layer.
//
//   Part 1 — offered-load sweep on a fixed cluster: goodput, availability
//   and p50/p99/p999 as load crosses the admission knee. Bounded queues +
//   load shedding keep goodput flat and the completed-request tail bounded
//   while p999 rises sharply approaching saturation — the signature of
//   admission control doing its job (vs unbounded queues, where latency
//   diverges and goodput collapses).
//
//   Part 2 — replication vs availability under seeded replica-host churn:
//   identical offered load and fault plan, R=1 vs R=3. Failover across
//   surviving owners turns downtime into retries instead of failures.
//
//   Part 3 — resharding cost: fraction of keys that move when one node
//   joins a consistent-hash ring (64 vnodes) vs a naive mod-N rehash.
//
// `--quick` shrinks horizons and the sweep for CI smoke runs; `--json`
// (or RB_BENCH_JSON) emits machine-readable telemetry; `--trace <path>`
// (or RB_TRACE) turns on causal request tracing and exports the retained
// tail exemplar trees as Chrome trace JSON.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "node/device.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "serve/frontdoor.hpp"
#include "serve/ring.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rb;

constexpr std::uint64_t kSeed = 0x5EA7;

serve::FrontDoorParams base_params(bool quick) {
  serve::FrontDoorParams p;
  p.replicas = 8;
  p.replication = 3;
  p.key_universe = quick ? 2'000 : 10'000;
  p.zipf_s = 0.99;
  p.read_fraction = 0.9;
  p.value_bytes = 256;
  p.horizon = (quick ? 100 : 400) * sim::kMillisecond;
  p.seed = kSeed;
  p.replica.device = node::find_device(node::DeviceKind::kCpu);
  p.replica.batch_overhead = 500 * sim::kMicrosecond;
  p.replica.per_request = node::KernelProfile{2.0e5, 6.0e5, 1.0, 512.0};
  p.replica.queue_limit = 32;
  p.replica.batch_max = 8;
  return p;
}

struct RunResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  double goodput_qps = 0.0;
  double availability = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  bool ledger_ok = false;
};

RunResult run(const serve::FrontDoorParams& params, double churn_mtbf_s,
              double churn_mttr_s, bool tracing = false) {
  if (tracing) {
    // Causal tracing per run: retain the slowest trees, export them as
    // Chrome spans at the end of the run.
    auto& tracer = obs::RequestTracer::global();
    tracer.clear();
    obs::ExemplarParams ep;
    ep.max_exemplars = 32;
    tracer.set_params(ep);
    tracer.set_enabled(true);
  }
  net::Topology topo = net::make_leaf_spine(3, 4, 3);  // 9 hosts
  sim::Simulator sim;
  net::Router router{topo};
  serve::FrontDoor door{sim, topo, router, params};
  door.preload();

  std::optional<faults::FaultInjector> injector;
  if (churn_mtbf_s > 0.0) {
    injector.emplace(sim, topo,
                     serve::make_host_churn_plan(door.replica_hosts(),
                                                 churn_mtbf_s, churn_mttr_s,
                                                 params.horizon, kSeed));
    injector->on_event(
        [&door](const faults::FaultEvent& ev) { door.handle_fault(ev); });
    injector->arm();
  }
  door.start();
  sim.run();

  const serve::SloAccountant& slo = door.slo();
  RunResult out;
  out.issued = slo.issued();
  out.completed = slo.completed();
  out.rejected = slo.rejected();
  out.failed = slo.failed();
  out.retries = slo.retries();
  out.goodput_qps = slo.goodput_qps(params.horizon);
  out.availability = slo.availability();
  out.ledger_ok = slo.ledger_ok();
  if (!slo.latency_seconds().empty()) {
    out.p50_ms = slo.latency_seconds().p50() * 1e3;
    out.p99_ms = slo.latency_seconds().p99() * 1e3;
    out.p999_ms = slo.latency_seconds().p999() * 1e3;
  }
  if (tracing) {
    auto& tracer = obs::RequestTracer::global();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const bool was = rec.enabled();
    rec.set_enabled(true);
    tracer.export_chrome(rec);
    rec.set_enabled(was);
    tracer.set_enabled(false);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
  }
  if (trace_path.empty()) {
    if (const char* env = std::getenv("RB_TRACE")) trace_path = env;
  }
  const bool tracing = !trace_path.empty();

  bench::heading("EXT-SERVE",
                 "KV serving plane: admission knee & replicated failover");
  bench::Report report{"ext_serving_tail", argc, argv};

  const auto params = base_params(quick);
  const double capacity = serve::estimated_capacity_qps(params, 8);
  report.config("seed", kSeed);
  report.config("quick", quick);
  report.config("replicas", std::uint64_t{8});
  report.config("horizon_s", sim::to_seconds(params.horizon));
  report.config("capacity_qps", capacity);

  // --- Part 1: offered-load sweep across the admission knee --------------
  std::printf("-- load sweep: 8 replicas, R=3, leaf-spine 3x4, capacity "
              "~%.0f req/s --\n\n", capacity);
  std::printf("%-8s %10s %10s %8s %8s %9s %9s %9s\n", "load", "offered",
              "goodput", "avail", "shed", "p50(ms)", "p99(ms)", "p999(ms)");
  const std::vector<double> full_loads = {0.25, 0.5, 0.75, 0.9, 1.0,
                                          1.25, 1.75, 2.5};
  const std::vector<double> quick_loads = {0.5, 1.0, 2.5};
  const auto& loads = quick ? quick_loads : full_loads;
  double goodput_at_125 = 0.0, goodput_at_max = 0.0;
  double p999_at_low = 0.0, p999_at_max = 0.0;
  for (const double load : loads) {
    auto p = params;
    p.offered_qps = load * capacity;
    const auto r = run(p, 0.0, 0.0, tracing);
    const double shed_pct =
        r.issued == 0 ? 0.0
                      : 100.0 * static_cast<double>(r.rejected) /
                            static_cast<double>(r.issued);
    std::printf("%-8.2f %10.0f %10.0f %7.1f%% %7.1f%% %9.3f %9.3f %9.3f\n",
                load, p.offered_qps, r.goodput_qps, r.availability * 100.0,
                shed_pct, r.p50_ms, r.p99_ms, r.p999_ms);
    char key[32];
    std::snprintf(key, sizeof key, "load.%03d", static_cast<int>(load * 100));
    const std::string prefix = key;
    report.metric(prefix + ".offered_qps", p.offered_qps);
    report.metric(prefix + ".goodput_qps", r.goodput_qps);
    report.metric(prefix + ".availability", r.availability);
    report.metric(prefix + ".rejected", r.rejected);
    report.metric(prefix + ".p50_ms", r.p50_ms);
    report.metric(prefix + ".p99_ms", r.p99_ms);
    report.metric(prefix + ".p999_ms", r.p999_ms);
    report.metric(prefix + ".ledger_ok", r.ledger_ok);
    if (load == 0.5) p999_at_low = r.p999_ms;
    if (load == 1.25) goodput_at_125 = r.goodput_qps;
    if (load == loads.back()) {
      goodput_at_max = r.goodput_qps;
      p999_at_max = r.p999_ms;
    }
  }
  // Knee shape, as single numbers: p999 rises sharply past the knee while
  // goodput stays flat (shedding, not collapsing).
  if (p999_at_low > 0.0) {
    report.metric("knee.p999_rise_ratio", p999_at_max / p999_at_low);
  }
  if (!quick && goodput_at_125 > 0.0) {
    report.metric("knee.goodput_flat_ratio", goodput_at_max / goodput_at_125);
  }
  bench::note("bounded queues shed past the knee: goodput saturates near");
  bench::note("capacity while p999 jumps to the queue-bound — it never");
  bench::note("diverges, because waiting time is capped by admission.");

  // --- Part 2: replication factor vs availability under churn ------------
  const double mtbf_s = quick ? 0.4 : 0.8;
  const double mttr_s = quick ? 0.15 : 0.25;
  std::printf("\n-- seeded replica churn (host MTBF %.2f s, MTTR %.2f s), "
              "offered 0.5x capacity --\n\n", mtbf_s, mttr_s);
  std::printf("%-4s %9s %10s %8s %8s %8s %13s\n", "R", "issued", "completed",
              "retried", "failed", "shed", "availability");
  double avail_r1 = 0.0, avail_r3 = 0.0;
  for (const std::size_t replication : {std::size_t{1}, std::size_t{3}}) {
    auto p = params;
    p.replication = replication;
    p.offered_qps = 0.5 * capacity;
    const auto r = run(p, mtbf_s, mttr_s, tracing);
    std::printf("%-4zu %9llu %10llu %8llu %8llu %8llu %12.2f%%\n",
                replication, static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.rejected),
                r.availability * 100.0);
    const std::string prefix =
        std::string{"chaos.r"} + std::to_string(replication);
    report.metric(prefix + ".availability", r.availability);
    report.metric(prefix + ".failed", r.failed);
    report.metric(prefix + ".retries", r.retries);
    report.metric(prefix + ".ledger_ok", r.ledger_ok);
    (replication == 1 ? avail_r1 : avail_r3) = r.availability;
  }
  report.metric("chaos.availability_gain", avail_r3 - avail_r1);
  bench::note("same churn, same load: R=3 turns a sole owner's downtime into");
  bench::note("failover retries; R=1 has nowhere to go and fails requests.");

  // --- Part 3: resharding movement, consistent hash vs mod-N -------------
  std::printf("\n-- keys moved when one node joins (64 vnodes/node, 20k keys)"
              " --\n\n");
  std::printf("%-8s %12s %12s\n", "N -> N+1", "ring moved", "mod-N moved");
  constexpr std::size_t kKeys = 20'000;
  for (const std::size_t n : {std::size_t{4}, std::size_t{8},
                              std::size_t{16}, std::size_t{32}}) {
    serve::HashRing ring{64};
    for (serve::ReplicaId id = 0; id < static_cast<serve::ReplicaId>(n); ++id)
      ring.add_node(id);
    std::vector<serve::ReplicaId> before;
    before.reserve(kKeys);
    std::vector<std::string> keys;
    keys.reserve(kKeys);
    for (std::size_t k = 0; k < kKeys; ++k) {
      keys.push_back("key-" + std::to_string(k));
      before.push_back(ring.primary(keys.back()));
    }
    ring.add_node(static_cast<serve::ReplicaId>(n));
    std::size_t moved = 0;
    for (std::size_t k = 0; k < kKeys; ++k) {
      moved += ring.primary(keys[k]) != before[k];
    }
    const double ring_frac = static_cast<double>(moved) / kKeys;
    const double naive_frac = static_cast<double>(n) / (n + 1);
    std::printf("%zu -> %-3zu %11.1f%% %11.1f%%\n", n, n + 1,
                ring_frac * 100.0, naive_frac * 100.0);
    report.metric("reshard.n" + std::to_string(n) + ".moved_fraction",
                  ring_frac);
  }
  bench::note("consistent hashing moves ~1/(N+1) of keys on a join; a mod-N");
  bench::note("rehash would reshuffle nearly everything.");

  if (tracing) {
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    rec.write_chrome_json(trace_path);
    std::printf("\nwrote %zu causal spans to %s\n", rec.event_count(),
                trace_path.c_str());
  }
  return 0;
}

// EXT-F4 — evidence for Key Findings 3/4: "dominance of non-European
// companies in the server market complicates the possibility of new
// European entrants" and hyperscaler verticalization sets the pace.
//
// Replicator-dynamics market simulation with ecosystem lock-in (gamma > 1).
// Expected shape: the >90% incumbent is stable for a decade under lock-in;
// European share stays negligible without intervention; the attractiveness
// boost an EC-backed entrant needs grows steeply with the target share and
// with lock-in strength — quantifying why the roadmap pushes coordinated
// action (Recs 5, 7) instead of subsidy alone.

#include <cstdio>

#include "bench_util.hpp"
#include "roadmap/market.hpp"

int main() {
  using namespace rb;
  bench::heading("EXT-F4", "Server-market concentration dynamics (Findings 3/4)");

  roadmap::MarketParams params;
  params.years = 10;
  params.gamma = 1.15;
  const auto trajectory =
      roadmap::simulate_market(roadmap::server_market_2016(), params);

  std::printf("%-6s", "year");
  for (const auto& v : trajectory.front()) {
    std::printf(" %16s", v.name.c_str());
  }
  std::printf(" %8s %8s\n", "HHI", "EU");
  for (std::size_t year = 0; year < trajectory.size(); year += 2) {
    std::printf("%-6zu", year);
    for (const auto& v : trajectory[year]) {
      std::printf(" %15.1f%%", v.share * 100.0);
    }
    std::printf(" %8.3f %7.1f%%\n", roadmap::hhi(trajectory[year]),
                roadmap::european_share(trajectory[year]) * 100.0);
  }

  std::printf("\n-- attractiveness boost an EU entrant needs (10y) --\n");
  std::printf("%-14s %14s %14s\n", "target share", "gamma=1.05",
              "gamma=1.30");
  for (const double target : {0.05, 0.10, 0.20}) {
    roadmap::MarketParams weak = params, strong = params;
    weak.gamma = 1.05;
    strong.gamma = 1.30;
    const double a = roadmap::required_entrant_boost(
        roadmap::server_market_2016(), "arm-server-eu", target, weak);
    const double b = roadmap::required_entrant_boost(
        roadmap::server_market_2016(), "arm-server-eu", target, strong);
    const auto fmt = [](double boost) {
      return boost > 64.0 ? std::string{">64x (not by subsidy)"}
                          : std::to_string(boost) + "x";
    };
    std::printf("%-13.0f%% %14s %14s\n", target * 100.0,
                fmt(a).c_str(), fmt(b).c_str());
  }
  bench::note("shape: lock-in freezes the incumbent's >90%; the entrant bar");
  bench::note("rises superlinearly with lock-in - coordination beats cash.");
  return 0;
}

// E10 — "We propose establishing benchmarks to compare current and novel
// architectures using Big Data applications" (paper Rec 9; also exercises
// Rec 7's neuromorphic market question on its favourable workload).
//
// Part 1: the suite executes for real on this machine (measured MRows/s of
// the actual C++ building-block implementations). Part 2: the same suite is
// projected onto the device catalogue, tuned and generic — the side-by-side
// comparison the roadmap says buyers lack.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "workloads/suite.hpp"

namespace {

/// "hash-join" -> "hash_join": metric keys stay shell-friendly.
std::string slug(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '-' || c == ' ' || c == '.') c = '_';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rb;
  bench::heading("E10", "Standard Big Data benchmark suite (Rec 9)");
  bench::Report report{"e10_benchmark_suite", argc, argv};
  report.config("measured_scale", 0.25);

  std::printf("-- measured on this machine (real kernels, 1 thread) --\n");
  std::printf("%-12s %12s %12s %14s %14s\n", "workload", "rows", "sec",
              "MRows/s", "checksum");
  for (const auto& r : workloads::run_measured_suite(0.25)) {
    std::printf("%-12s %12llu %12.3f %14.2f %14llu\n", r.workload.c_str(),
                static_cast<unsigned long long>(r.rows), r.seconds,
                r.mrows_per_second,
                static_cast<unsigned long long>(r.checksum));
    const std::string prefix = "measured." + slug(r.workload);
    report.metric(prefix + ".mrows_per_s", r.mrows_per_second);
    report.metric(prefix + ".checksum", r.checksum);
  }

  const auto catalog = node::standard_catalog();
  for (const auto path :
       {accel::CodePath::kDeviceTuned, accel::CodePath::kGenericPortable}) {
    std::printf("\n-- projected across architectures (%s) --\n",
                to_string(path).c_str());
    std::printf("%-12s %-18s %12s %10s %12s\n", "workload", "device",
                "sec", "speedup", "joules");
    const std::string path_key =
        path == accel::CodePath::kDeviceTuned ? "tuned" : "generic";
    for (const auto& p : workloads::project_suite(catalog, path, 1.0)) {
      std::printf("%-12s %-18s %12.4f %9.2fx %12.2f\n", p.workload.c_str(),
                  p.device.c_str(), p.seconds, p.speedup_vs_cpu, p.joules);
      const std::string prefix =
          "projected." + path_key + "." + slug(p.workload) + "." +
          slug(p.device);
      report.metric(prefix + ".speedup_vs_cpu", p.speedup_vs_cpu);
      report.metric(prefix + ".joules", p.joules);
    }
  }
  bench::note("paper shape: no architecture dominates all workloads - the");
  bench::note("spread is exactly why standard benchmarks are needed.");
  return 0;
}

// E10 — "We propose establishing benchmarks to compare current and novel
// architectures using Big Data applications" (paper Rec 9; also exercises
// Rec 7's neuromorphic market question on its favourable workload).
//
// Part 1: the suite executes for real on this machine (measured MRows/s of
// the actual C++ building-block implementations). Part 2: the same suite is
// projected onto the device catalogue, tuned and generic — the side-by-side
// comparison the roadmap says buyers lack.

#include <cstdio>

#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace rb;
  bench::heading("E10", "Standard Big Data benchmark suite (Rec 9)");

  std::printf("-- measured on this machine (real kernels, 1 thread) --\n");
  std::printf("%-12s %12s %12s %14s %14s\n", "workload", "rows", "sec",
              "MRows/s", "checksum");
  for (const auto& r : workloads::run_measured_suite(0.25)) {
    std::printf("%-12s %12llu %12.3f %14.2f %14llu\n", r.workload.c_str(),
                static_cast<unsigned long long>(r.rows), r.seconds,
                r.mrows_per_second,
                static_cast<unsigned long long>(r.checksum));
  }

  const auto catalog = node::standard_catalog();
  for (const auto path :
       {accel::CodePath::kDeviceTuned, accel::CodePath::kGenericPortable}) {
    std::printf("\n-- projected across architectures (%s) --\n",
                to_string(path).c_str());
    std::printf("%-12s %-18s %12s %10s %12s\n", "workload", "device",
                "sec", "speedup", "joules");
    for (const auto& p : workloads::project_suite(catalog, path, 1.0)) {
      std::printf("%-12s %-18s %12.4f %9.2fx %12.2f\n", p.workload.c_str(),
                  p.device.c_str(), p.seconds, p.speedup_vs_cpu, p.joules);
    }
  }
  bench::note("paper shape: no architecture dominates all workloads - the");
  bench::note("spread is exactly why standard benchmarks are needed.");
  return 0;
}

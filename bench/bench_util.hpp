#pragma once
// Shared bench runner: the formatting helpers the experiment benches print
// their paper-style tables with, plus a machine-readable telemetry `Report`.
// Every bench that constructs a Report accepts `--json <path>` (or the
// RB_BENCH_JSON environment variable) and writes one JSON document
//   {"bench": <name>, "config": {...}, "metrics": {...}}
// on exit, so CI and sweep scripts can consume results without scraping the
// human tables.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/json.hpp"
#include "sim/stats.hpp"

namespace rb::bench {

inline void heading(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Machine-readable bench telemetry. Construct one per bench with argc/argv;
/// if neither `--json <path>` nor RB_BENCH_JSON is present the report is
/// inert (every call is a cheap no-op). Values registered via config() and
/// metric() are written as one JSON document when write() is called (the
/// destructor calls it too, so early returns still produce output).
class Report {
 public:
  using Value = std::variant<std::string, double, std::int64_t, std::uint64_t,
                             bool>;

  Report(std::string bench, int argc, char** argv)
      : bench_{std::move(bench)} {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view{argv[i]} == "--json") {
        if (i + 1 >= argc)
          throw std::invalid_argument{"--json requires a path argument"};
        path_ = argv[i + 1];
      }
    }
    if (path_.empty()) {
      if (const char* env = std::getenv("RB_BENCH_JSON")) path_ = env;
    }
  }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report() {
    try {
      write();
    } catch (...) {
      // Destructors must not throw; a failed telemetry write is not worth
      // aborting the bench over.
    }
  }

  /// True when a JSON destination was requested.
  bool enabled() const noexcept { return !path_.empty(); }
  const std::string& path() const noexcept { return path_; }

  void config(std::string key, Value v) {
    if (!enabled()) return;
    config_.emplace_back(std::move(key), std::move(v));
  }
  void metric(std::string key, Value v) {
    if (!enabled()) return;
    metrics_.emplace_back(std::move(key), std::move(v));
  }
  /// Expand a distribution summary into <key>.count/.mean/.min/.max/.p50/...
  void metric(const std::string& key, const sim::StatSummary& s) {
    if (!enabled()) return;
    metric(key + ".count", static_cast<std::uint64_t>(s.count));
    metric(key + ".mean", s.mean);
    metric(key + ".min", s.min);
    metric(key + ".max", s.max);
    metric(key + ".p50", s.p50);
    metric(key + ".p90", s.p90);
    metric(key + ".p99", s.p99);
    metric(key + ".p999", s.p999);
  }

  /// Write the document now (idempotent). Throws std::runtime_error on I/O
  /// failure when called explicitly; the destructor swallows errors.
  void write() {
    if (!enabled() || written_) return;
    written_ = true;
    obs::JsonWriter w;
    w.begin_object();
    w.key("bench").value(bench_);
    w.key("config").begin_object();
    for (const auto& [k, v] : config_) emit(w, k, v);
    w.end_object();
    w.key("metrics").begin_object();
    for (const auto& [k, v] : metrics_) emit(w, k, v);
    w.end_object();
    w.end_object();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error{"Report: cannot open " + path_};
    const std::string& doc = w.str();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (!ok) throw std::runtime_error{"Report: short write to " + path_};
  }

 private:
  static void emit(obs::JsonWriter& w, const std::string& k, const Value& v) {
    w.key(k);
    std::visit([&w](const auto& x) { w.value(x); }, v);
  }

  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, Value>> config_;
  std::vector<std::pair<std::string, Value>> metrics_;
  bool written_ = false;
};

}  // namespace rb::bench

#pragma once
// Small formatting helpers shared by the experiment benches. Each bench is a
// standalone binary that prints the paper-style table(s) for one experiment
// (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the shapes).

#include <cstdio>
#include <string>

namespace rb::bench {

inline void heading(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace rb::bench

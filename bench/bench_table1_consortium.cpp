// T1 — reproduces Table 1 of the paper verbatim from the structured
// registry (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.hpp"
#include "roadmap/report.hpp"

int main() {
  rb::bench::heading("T1", "RETHINK big Project Consortium (paper Table 1)");
  std::printf("%s\n", rb::roadmap::render_consortium_table().c_str());
  return 0;
}

// Ablations of the modelling choices DESIGN.md calls out:
//
//  A1 — fabric rate allocation: max-min fair (progressive filling) vs the
//       naive per-link equal split. Equal split strands bandwidth whenever a
//       flow is bottlenecked elsewhere, inflating shuffle makespans — this
//       quantifies why the simulator uses max-min.
//  A2 — offload batching: the per-offload launch latency means tiny batches
//       never amortize; the sweep locates the break-even batch size per
//       device (the practical side of Rec 10's "partially hardware-
//       accelerated implementations").
//  (The radix-join partitioning ablation lives in bench_micro_blocks, where
//  it runs on real hardware.)

#include <cstdio>

#include "accel/offload.hpp"
#include "bench_util.hpp"
#include "net/coflow.hpp"
#include "net/fabric.hpp"

int main() {
  using namespace rb;
  bench::heading("A1", "Fabric ablation: max-min fair vs per-link equal split");

  // Symmetric all-to-all gives both schemes identical rates; the gap shows
  // on asymmetric traffic: an incast pins some flows far below their equal
  // share on their first hop, and only max-min hands the slack to the
  // co-located local flows.
  const auto run_asymmetric = [](net::RateAllocation allocation) {
    net::FabricParams params;
    const auto topo = net::make_leaf_spine(2, 3, 3, params);
    sim::Simulator sim;
    const net::Router router{topo};
    net::FlowSimulator fabric{sim, topo, router, allocation};
    const auto hosts = topo.nodes_of_kind(net::NodeKind::kHost);
    sim::SimTime makespan = 0;
    const auto track = [&makespan](const net::FlowRecord& r) {
      makespan = std::max(makespan, r.finish);
    };
    // Incast: hosts 1..5 each send 32 MiB to host 0 ...
    for (std::size_t i = 1; i <= 5; ++i) {
      fabric.start_flow(hosts[i], hosts[0], 32 * sim::kMiB, track);
    }
    // ... while each incast source also serves a local 32 MiB transfer to
    // its leaf neighbor (indices chosen within the same leaf of 3 hosts).
    for (const auto& [src, dst] :
         {std::pair<std::size_t, std::size_t>{1, 2},
          std::pair<std::size_t, std::size_t>{3, 4},
          std::pair<std::size_t, std::size_t>{4, 5},
          std::pair<std::size_t, std::size_t>{6, 7},
          std::pair<std::size_t, std::size_t>{7, 8}}) {
      fabric.start_flow(hosts[src], hosts[dst], 32 * sim::kMiB, track);
    }
    sim.run();
    return std::pair{makespan, fabric.fct_seconds().mean()};
  };

  const auto [mm_makespan, mm_mean] =
      run_asymmetric(net::RateAllocation::kMaxMinFair);
  const auto [eq_makespan, eq_mean] =
      run_asymmetric(net::RateAllocation::kEqualSharePerLink);
  std::printf("%-14s %14s %14s\n", "allocator", "makespan(s)", "mean FCT(s)");
  std::printf("%-14s %14.3f %14.3f\n", "max-min", sim::to_seconds(mm_makespan),
              mm_mean);
  std::printf("%-14s %14.3f %14.3f\n", "equal-split",
              sim::to_seconds(eq_makespan), eq_mean);
  std::printf("equal-split penalty: %.2fx makespan, %.2fx mean FCT\n",
              static_cast<double>(eq_makespan) /
                  static_cast<double>(mm_makespan),
              eq_mean / mm_mean);
  bench::note("equal split never beats max-min; the gap is the bandwidth");
  bench::note("stranded next to incast-bottlenecked flows.");

  bench::heading("A2", "Offload ablation: batch size vs launch amortization");
  const auto gpu = node::find_device(node::DeviceKind::kGpu);
  const auto asic = node::find_device(node::DeviceKind::kAsic);
  const auto cpu = node::find_device(node::DeviceKind::kCpu);
  constexpr std::uint64_t kTotalRows = 1 << 22;

  std::printf("%-12s %14s %14s %14s\n", "batch rows", "cpu (ms)",
              "gpu (ms)", "asic (ms)");
  for (std::uint64_t batch = 1 << 8; batch <= kTotalRows; batch <<= 3) {
    const std::uint64_t batches = kTotalRows / batch;
    const auto total = [&](const node::DeviceModel& device,
                           accel::BlockKind block) {
      if (!accel::supports(device.kind, block)) return -1.0;
      return sim::to_milliseconds(
          static_cast<sim::SimTime>(batches) *
          accel::block_time(device, block, batch,
                            accel::CodePath::kDeviceTuned));
    };
    std::printf("%-12llu %14.2f %14.2f %14.2f\n",
                static_cast<unsigned long long>(batch),
                total(cpu, accel::BlockKind::kDnnInference),
                total(gpu, accel::BlockKind::kDnnInference),
                total(asic, accel::BlockKind::kDnnInference));
  }
  bench::note("below the break-even batch, launch latency dominates and the");
  bench::note("CPU wins; above it the accelerator's roofline takes over.");

  bench::heading("A3", "Coflow scheduling: TCP-fair vs smallest-bottleneck-first");
  {
    const auto topo = net::make_star(8);
    const auto hosts = topo.nodes_of_kind(net::NodeKind::kHost);
    // Four shuffles of very different sizes contending on the same hosts.
    std::vector<net::Coflow> coflows;
    const sim::Bytes sizes[] = {2 * sim::kMiB, 8 * sim::kMiB, 32 * sim::kMiB,
                                128 * sim::kMiB};
    int index = 0;
    for (const auto bytes : sizes) {
      net::Coflow coflow;
      coflow.name = "shuffle-" + std::to_string(index++);
      for (std::size_t s = 0; s < 2; ++s) {
        for (std::size_t d = 0; d < 2; ++d) {
          coflow.flows.push_back(
              net::CoflowFlow{hosts[s], hosts[2 + d], bytes});
        }
      }
      coflows.push_back(std::move(coflow));
    }
    const auto fair = net::run_coflows(
        topo, coflows, net::CoflowSchedule::kConcurrentFairSharing);
    const auto sebf = net::run_coflows(
        topo, coflows, net::CoflowSchedule::kSmallestBottleneckFirst);
    std::printf("%-12s %16s %16s\n", "coflow", "fair CCT(s)", "sebf CCT(s)");
    for (std::size_t c = 0; c < coflows.size(); ++c) {
      std::printf("%-12s %16.3f %16.3f\n", fair.cct_seconds[c].first.c_str(),
                  fair.cct_seconds[c].second, sebf.cct_seconds[c].second);
    }
    std::printf("average CCT: fair %.3f s vs sebf %.3f s (%.2fx better)\n",
                fair.avg_cct_seconds, sebf.avg_cct_seconds,
                fair.avg_cct_seconds / sebf.avg_cct_seconds);
  }
  bench::note("scheduling whole shuffles (not flows) cuts average coflow");
  bench::note("completion time - the Big-Data-aware network software case.");
  return 0;
}

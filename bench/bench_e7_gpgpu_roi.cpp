// E7 — GPGPU ROI vs utilization (paper Sec IV.B.2 and Key Finding 2):
// "small to medium-sized data center operators are unwilling to deploy
// GPGPUs at large scale, as the power consumption is too high and
// utilization too low to justify the investment".
//
// ROI of adding one GPU to a server, swept over utilization and kernel
// speedup, plus the break-even utilization per accelerator type (porting
// effort included). Expected shape: ROI negative at low utilization for
// every device; break-even rises with porting cost (GPU < FPGA < ASIC).

#include <cstdio>

#include "bench_util.hpp"
#include "node/tco.hpp"

int main() {
  using namespace rb;
  bench::heading("E7", "Accelerator ROI vs utilization (Finding 2)");

  node::RoiParams base;
  base.host = node::find_device(node::DeviceKind::kCpu);
  base.accelerator = node::find_device(node::DeviceKind::kGpu);

  std::printf("-- ROI of one GPU (3-year horizon) --\n");
  std::printf("%-12s", "speedup\\util");
  for (const double u : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    std::printf(" %8.2f", u);
  }
  std::printf("\n");
  for (const double s : {3.0, 5.0, 10.0, 20.0, 30.0}) {
    std::printf("%-12.0f", s);
    for (const double u : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
      auto p = base;
      p.speedup = s;
      p.utilization = u;
      std::printf(" %+8.2f", node::accelerator_roi(p).roi);
    }
    std::printf("\n");
  }

  std::printf("\n-- break-even utilization at speedup 8x --\n");
  std::printf("%-24s %12s %14s\n", "device", "break-even", "porting (pm)");
  for (const auto kind : {node::DeviceKind::kGpu, node::DeviceKind::kFpga,
                          node::DeviceKind::kAsic,
                          node::DeviceKind::kNeuromorphic}) {
    auto p = base;
    p.accelerator = node::find_device(kind);
    p.speedup = 8.0;
    const double be = node::breakeven_utilization(p);
    std::printf("%-24s %11.1f%% %14.0f\n", p.accelerator.name.c_str(),
                be > 1.0 ? 100.0 : be * 100.0,
                p.accelerator.porting_person_months);
  }
  bench::note("paper shape: negative ROI below ~10-40% utilization; higher");
  bench::note("porting effort (FPGA/ASIC/neuromorphic) raises the bar.");
  return 0;
}

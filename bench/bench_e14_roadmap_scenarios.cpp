// E14 — the roadmap itself (paper Sec V.B): the twelve recommendations,
// each scored by the library's quantitative models, the Bass adoption
// projections for the technology portfolio, and example adoption scenarios
// for a reference European SME. Expected shape: accelerator and benchmark
// recommendations score on hard evidence; neuromorphic is real but distant;
// EC intervention visibly pulls adoption forward.

#include <cstdio>

#include "bench_util.hpp"
#include "roadmap/funding.hpp"
#include "roadmap/report.hpp"
#include "roadmap/scenario.hpp"

int main() {
  using namespace rb;
  bench::heading("E14", "Roadmap scenario engine: 12 recommendations, scored");

  std::printf("%s\n", roadmap::render_recommendation_matrix().c_str());
  std::printf("%s\n", roadmap::render_adoption_timeline(2016, 2030).c_str());

  std::printf("-- EC intervention effect (Rec 6: FPGA programmability) --\n");
  for (const auto& tech : roadmap::technology_portfolio()) {
    if (tech.name != "FPGA-accel") continue;
    const auto boosted = roadmap::with_intervention(tech, 0.8, 0.4);
    std::printf("baseline: 25%% adoption in %d; with EC programme: %d\n",
                roadmap::year_of_adoption(tech, 0.25),
                roadmap::year_of_adoption(boosted, 0.25));
  }

  std::printf("\n-- adoption scenarios for a reference EU SME --\n");
  roadmap::CompanyProfile sme;
  for (const auto& [device, workload] :
       std::vector<std::pair<node::DeviceKind, accel::BlockKind>>{
           {node::DeviceKind::kGpu, accel::BlockKind::kKMeans},
           {node::DeviceKind::kGpu, accel::BlockKind::kHashJoin},
           {node::DeviceKind::kFpga, accel::BlockKind::kPatternMatch},
           {node::DeviceKind::kAsic, accel::BlockKind::kDnnInference},
           {node::DeviceKind::kNeuromorphic, accel::BlockKind::kDnnInference},
       }) {
    roadmap::TechnologyScenario scenario;
    scenario.device = device;
    scenario.workload = workload;
    const auto out = roadmap::evaluate_scenario(sme, scenario);
    std::printf("%s\n", out.summary.c_str());
  }
  std::printf("\n-- coordinated EC funding plans (greedy adoption gain) --\n");
  for (const double budget : {40e6, 100e6}) {
    const auto plan = roadmap::allocate_funding(budget, 2026);
    std::printf("budget $%.0fM -> spent $%.0fM, adoption gain %.3f, funds:",
                budget / 1e6, plan.spent / 1e6, plan.total_gain);
    for (const auto& option : plan.funded) {
      std::printf(" R%d(%s)", option.recommendation,
                  option.technology.c_str());
    }
    std::printf("\n");
  }

  bench::note("paper shape: the roadmap's qualitative advice becomes a");
  bench::note("scored, reproducible decision matrix with a funded plan.");
  return 0;
}

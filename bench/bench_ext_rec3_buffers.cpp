// EXT-R3 — evidence for Recommendation 3: "anticipate the changes in Data
// Center design for 400Gb Ethernet networks (and beyond)", including the
// "novel Data Center interconnect designs required at 400Gb operation".
//
// Packet-level port-queue sweeps: (1) tail queueing delay vs line rate for
// the same bursty offered load and buffer — faster ports drain identical
// bursts proportionally faster; (2) the buffer a port needs to hold drops
// under 0.1% at each generation — absolute buffer need grows with rate,
// which is precisely the switch-memory design pressure at 400G; (3) ECN
// marking as the knob that trades loss for signal at shallow buffers.

#include <cstdio>

#include "bench_util.hpp"
#include "net/queueing.hpp"

int main() {
  using namespace rb;
  bench::heading("EXT-R3", "Port queueing across Ethernet generations (Rec 3)");

  net::BurstyTraffic traffic;
  traffic.load = 0.75;
  traffic.burst_factor = 6.0;
  traffic.packets = 150'000;

  std::printf("-- same load/burstiness, 512 KiB buffer --\n");
  std::printf("%-8s %12s %12s %12s %10s\n", "gen", "p50(us)", "p99(us)",
              "p99.9(us)", "drops");
  for (const auto gen :
       {net::EthernetGen::k10G, net::EthernetGen::k40G,
        net::EthernetGen::k100G, net::EthernetGen::k400G}) {
    net::PortParams port;
    port.rate = net::rate_of(gen);
    port.buffer_bytes = 512 * 1024;
    const auto r = net::simulate_port(port, traffic);
    std::printf("%-8s %12.2f %12.2f %12.2f %9.3f%%\n",
                net::to_string(gen).c_str(), r.p50_delay_us, r.p99_delay_us,
                r.p999_delay_us, r.drop_rate * 100.0);
  }

  std::printf("\n-- buffer for < 0.1%% drops at load 0.85, burst 10x --\n");
  std::printf("   (queue dynamics in bytes are invariant at fixed fractional\n");
  std::printf("    load, so the byte requirement holds across generations;\n");
  std::printf("    what collapses is the absorption TIME that buffer buys)\n");
  net::BurstyTraffic heavy = traffic;
  heavy.load = 0.85;
  heavy.burst_factor = 10.0;
  std::printf("%-8s %14s %22s\n", "gen", "buffer (KiB)",
              "absorption time (us)");
  for (const auto gen :
       {net::EthernetGen::k10G, net::EthernetGen::k40G,
        net::EthernetGen::k100G, net::EthernetGen::k400G}) {
    net::PortParams port;
    port.rate = net::rate_of(gen);
    const auto buffer = net::buffer_for_drop_target(port, heavy, 0.001);
    const double absorb_us =
        static_cast<double>(buffer) * 8.0 / net::rate_of(gen) * 1e6;
    std::printf("%-8s %14llu %22.1f\n", net::to_string(gen).c_str(),
                static_cast<unsigned long long>(buffer / 1024), absorb_us);
  }

  std::printf("\n-- ECN at a shallow 128 KiB buffer (100GbE, load sweep) --\n");
  std::printf("%-8s %12s %12s\n", "load", "marks", "drops");
  for (const double load : {0.5, 0.7, 0.85, 0.95}) {
    net::PortParams port;
    port.rate = net::rate_of(net::EthernetGen::k100G);
    port.buffer_bytes = 128 * 1024;
    port.ecn_threshold_bytes = 32 * 1024;
    auto t = traffic;
    t.load = load;
    const auto r = net::simulate_port(port, t);
    std::printf("%-8.2f %11.3f%% %11.3f%%\n", load, r.ecn_mark_rate * 100.0,
                r.drop_rate * 100.0);
  }
  bench::note("shape: delay scales ~1/rate; buffer-per-port demand and the");
  bench::note("need for congestion signalling grow into 400G - new designs.");
  return 0;
}

// EXT — Max-min allocator scaling: flow-event throughput of the fabric core
// across active-flow count × topology size × allocation mode.
//
// Protocol per case: start N concurrent random-pair flows on a fat-tree
// (they land on one coalesced reallocation epoch), then churn — every
// completion starts a replacement flow until the churn budget is spent — and
// run to empty. Wall-clock covers the whole run; a "flow event" is any
// start/completion/failure/cancellation. Reported telemetry (events/sec,
// ns/flow-event, reallocations, solve rounds, coalescing counters) is the
// perf baseline the roadmap's "as fast as the hardware allows" trajectory is
// measured against.
//
// --quick runs a single small case per mode and enforces a generous
// wall-clock ceiling on the full max-min solve so gross allocator
// regressions fail CI without flaky thresholds.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "bench_util.hpp"
#include "net/fabric.hpp"
#include "sim/random.hpp"

namespace {

using namespace rb;

struct CaseResult {
  double events = 0;
  double wall_s = 0;
  double makespan_s = 0;
  net::AllocatorStats stats;
};

const char* mode_name(net::RateAllocation alloc) {
  switch (alloc) {
    case net::RateAllocation::kMaxMinFair:
      return "maxmin_full";
    case net::RateAllocation::kMaxMinIncremental:
      return "maxmin_incremental";
    case net::RateAllocation::kEqualSharePerLink:
      return "equal_share";
  }
  return "?";
}

CaseResult run_case(int k, int n, int churn, bool rack_local,
                    net::RateAllocation alloc) {
  const auto topo = net::make_fat_tree(k);
  sim::Simulator sim;
  const net::Router router{topo};
  net::FlowSimulator fabric{sim, topo, router, alloc};
  const auto hosts = topo.nodes_of_kind(net::NodeKind::kHost);
  sim::Rng rng{17};
  // Rack-local traffic never leaves the edge switch, so the flow/link graph
  // splits into per-rack components — the regime incremental mode targets.
  // Uniform random pairs percolate into one component through the core and
  // mostly hit the fallback path instead. Hosts are contiguous per edge
  // switch in construction order, k/2 to a rack.
  const std::size_t rack = static_cast<std::size_t>(k / 2);
  auto pick = [&](net::NodeId& src, net::NodeId& dst) {
    if (rack_local) {
      const std::size_t base = rng.uniform_index(hosts.size() / rack) * rack;
      const std::size_t a = rng.uniform_index(rack);
      std::size_t b = rng.uniform_index(rack - 1);
      if (b >= a) ++b;
      src = hosts[base + a];
      dst = hosts[base + b];
    } else {
      src = hosts[rng.uniform_index(hosts.size())];
      dst = hosts[rng.uniform_index(hosts.size())];
    }
  };
  int remaining_churn = churn;
  std::function<void(const net::FlowRecord&)> on_done =
      [&](const net::FlowRecord&) {
        if (remaining_churn <= 0) return;
        --remaining_churn;
        net::NodeId src, dst;
        pick(src, dst);
        fabric.start_flow(src, dst,
                          1 * sim::kMiB + rng.uniform_index(4 * sim::kMiB),
                          on_done);
      };
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    net::NodeId src, dst;
    pick(src, dst);
    fabric.start_flow(src, dst,
                      1 * sim::kMiB + rng.uniform_index(4 * sim::kMiB),
                      on_done);
  }
  sim.run();
  CaseResult r;
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.events = static_cast<double>(fabric.started_flows() +
                                 fabric.completed_flows() +
                                 fabric.failed_flows() +
                                 fabric.cancelled_flows());
  r.makespan_s = sim::to_seconds(sim.now());
  r.stats = fabric.allocator_stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rb;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::heading("EXT", "Max-min allocator scaling: flow-events/sec across "
                        "fabric size and allocation mode");
  bench::Report report{"ext_maxmin_scale", argc, argv};
  report.config("quick", quick);
  report.config("seed", std::uint64_t{17});

  struct Case {
    int k, n, churn;
    bool rack_local;
  };
  // The ft8_n10000 case is the PR acceptance config: the pre-arena solver
  // is the baseline its ≥5× events/sec target is measured against. The
  // rack-local ft8 case keeps the fabric large but the traffic partitioned,
  // so dirty components stay under the incremental-fallback threshold and
  // the incremental solver actually engages (uniform cases mostly fall
  // back: everything couples through the core).
  const std::vector<Case> cases =
      quick ? std::vector<Case>{{4, 500, 200, false}}
            : std::vector<Case>{{4, 2000, 500, false},
                                {8, 2000, 2000, true},
                                {8, 10000, 1000, false}};
  const net::RateAllocation modes[] = {
      net::RateAllocation::kMaxMinFair,
      net::RateAllocation::kMaxMinIncremental,
      net::RateAllocation::kEqualSharePerLink,
  };

  // Generous ceiling for the quick full-solve case (actual: well under 1 s
  // on any modern machine); a gross allocator regression trips it in CI.
  constexpr double kQuickCeilingSeconds = 30.0;
  bool perf_ok = true;

  std::printf("%-20s %-12s %9s %9s %11s %9s %9s %9s %9s\n", "mode", "topo",
              "flows", "events", "ev/s", "ns/ev", "solves", "rounds",
              "coalesced");
  for (const Case& c : cases) {
    for (const auto alloc : modes) {
      const CaseResult r = run_case(c.k, c.n, c.churn, c.rack_local, alloc);
      const double evps = r.events / r.wall_s;
      const double ns_per_event = r.wall_s * 1e9 / r.events;
      const std::string topo =
          "ft" + std::to_string(c.k) + (c.rack_local ? "local" : "");
      std::printf("%-20s %-12s %9d %9.0f %11.1f %9.1f %9llu %9llu %9llu\n",
                  mode_name(alloc), topo.c_str(), c.n, r.events, evps,
                  ns_per_event,
                  static_cast<unsigned long long>(r.stats.reallocations),
                  static_cast<unsigned long long>(r.stats.solve_rounds),
                  static_cast<unsigned long long>(r.stats.coalesced_events));
      const std::string key = std::string{mode_name(alloc)} + "." + topo +
                              "_n" + std::to_string(c.n);
      report.metric(key + ".events", r.events);
      report.metric(key + ".wall_seconds", r.wall_s);
      report.metric(key + ".events_per_sec", evps);
      report.metric(key + ".ns_per_flow_event", ns_per_event);
      report.metric(key + ".reallocations", r.stats.reallocations);
      report.metric(key + ".full_solves", r.stats.full_solves);
      report.metric(key + ".incremental_solves", r.stats.incremental_solves);
      report.metric(key + ".incremental_fallbacks",
                    r.stats.incremental_fallbacks);
      report.metric(key + ".solve_rounds", r.stats.solve_rounds);
      report.metric(key + ".coalesced_events", r.stats.coalesced_events);
      report.metric(key + ".makespan_seconds", r.makespan_s);
      if (quick && alloc == net::RateAllocation::kMaxMinFair &&
          r.wall_s > kQuickCeilingSeconds) {
        perf_ok = false;
        std::fprintf(stderr,
                     "PERF REGRESSION: quick full-solve case took %.1fs "
                     "(ceiling %.0fs)\n",
                     r.wall_s, kQuickCeilingSeconds);
      }
    }
  }
  bench::note("flat-arena allocator: one coalesced epoch absorbs each");
  bench::note("same-timestamp burst; incremental mode re-solves only the");
  bench::note("dirty flow/link component (falls back on oversized sets).");
  if (!perf_ok) return 1;
  return 0;
}

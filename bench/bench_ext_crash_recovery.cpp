// EXT-CRASH — Durable LSM: crash-consistency proof and the price of
// durability (robustness leg of the Rec 10 storage substrate).
//
// Three sections:
//  1. durable-put overhead — the same put workload against the in-memory
//     store, a MemDevice-backed durable store, and a FileDevice-backed one
//     (real fsync), at several group-commit cadences; reports ns/op and the
//     durable/in-memory ratio.
//  2. recovery time vs WAL length — fill the WAL without flushing, then
//     time the recovering constructor as the log grows; reports ms and
//     replayed records/s.
//  3. crash-point + bit-flip fuzz sweep — run_crash_fuzz over >= 3 workload
//     seeds (every device-op boundary x every tear offset, plus a
//     lying-disk pass), then run_bitflip_fuzz across every persisted
//     artifact. Gates: zero invariant violations, zero undetected
//     corruption, and >= 1000 distinct crash points in the full sweep.
//     Exits 1 when any invariant fails (also in --quick mode, so CI runs
//     the proof, not just the timing).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "storage/crashfuzz.hpp"
#include "storage/device.hpp"
#include "storage/lsm.hpp"

namespace {

using rb::storage::CrashFuzzConfig;
using rb::storage::CrashFuzzResult;
using rb::storage::FileDevice;
using rb::storage::LsmOptions;
using rb::storage::LsmStore;
using rb::storage::MemDevice;

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < best) best = s;
  }
  return best;
}

std::string bench_key(std::size_t i) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "key-%08zu", i);
  return buf;
}

/// One put workload: `n` writes over a 1/4-size key space (so updates and
/// fresh keys mix), group commit every `sync_every` ops, final sync.
void run_puts(LsmStore& store, std::size_t n, std::size_t sync_every) {
  const std::string value(32, 'v');
  const std::size_t keys = n / 4 + 1;
  for (std::size_t i = 0; i < n; ++i) {
    store.put(bench_key(i % keys), value);
    if ((i + 1) % sync_every == 0) store.sync();
  }
  store.sync();
}

/// Fresh scratch directory for a FileDevice run; removed by the caller.
std::string scratch_dir(int run) {
  return (std::filesystem::temp_directory_path() /
          ("rb_bench_crash_" + std::to_string(::getpid()) + "_" +
           std::to_string(run)))
      .string();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  rb::bench::Report report{"ext_crash_recovery", argc, argv};
  report.config("quick", quick);

  LsmOptions bench_opts;
  bench_opts.memtable_bytes = 1 << 18;  // WAL-dominated put path

  // --- 1. durable-put overhead ---------------------------------------------
  rb::bench::heading("EXT-CRASH",
                     "durable LSM: put overhead, recovery time, and "
                     "crash-point fuzz proof");
  std::printf("  durable-put overhead (value 32 B, memtable %zu KiB)\n",
              bench_opts.memtable_bytes / 1024);
  std::printf("  %-10s %-6s %8s %12s %8s\n", "backend", "sync/", "ops",
              "ns-per-op", "vs-mem");

  const int reps = quick ? 3 : 5;
  const std::size_t base_ops = quick ? 2'000 : 10'000;
  double inmem_ns = 0.0;
  int file_run = 0;
  for (const std::size_t sync_every : {std::size_t{1}, std::size_t{16}}) {
    for (const char* backend : {"inmem", "memdev", "filedev"}) {
      const bool is_file = std::strcmp(backend, "filedev") == 0;
      // Real per-op fsyncs are expensive; keep that cell small.
      const std::size_t n = is_file && sync_every == 1
                                ? (quick ? 300 : 1'000)
                                : base_ops;
      const double s = best_seconds(reps, [&] {
        if (std::strcmp(backend, "inmem") == 0) {
          LsmStore store{bench_opts};
          run_puts(store, n, sync_every);
        } else if (std::strcmp(backend, "memdev") == 0) {
          MemDevice device;
          LsmStore store{bench_opts, device};
          run_puts(store, n, sync_every);
        } else {
          const std::string dir = scratch_dir(file_run++);
          {
            FileDevice device{dir};
            LsmStore store{bench_opts, device};
            run_puts(store, n, sync_every);
          }
          std::filesystem::remove_all(dir);
        }
      });
      const double ns = s * 1e9 / static_cast<double>(n);
      if (std::strcmp(backend, "inmem") == 0) inmem_ns = ns;
      const double ratio = inmem_ns > 0.0 ? ns / inmem_ns : 0.0;
      std::printf("  %-10s %-6zu %8zu %12.0f %7.1fx\n", backend, sync_every,
                  n, ns, ratio);
      const std::string tag = std::string{"put."} + backend + ".sync" +
                              std::to_string(sync_every);
      report.metric(tag + ".ns_per_op", ns);
      report.metric(tag + ".vs_inmem", ratio);
    }
  }

  // --- 2. recovery time vs WAL length --------------------------------------
  std::printf("\n  recovery time vs WAL length (no flush: pure replay)\n");
  std::printf("  %-10s %12s %14s\n", "records", "recover-ms", "records/s");
  LsmOptions replay_opts;
  replay_opts.memtable_bytes = 64u << 20;  // nothing flushes: WAL-only state
  const std::vector<std::size_t> wal_lengths =
      quick ? std::vector<std::size_t>{500, 2'000}
            : std::vector<std::size_t>{1'000, 4'000, 16'000};
  for (const std::size_t n : wal_lengths) {
    MemDevice device;
    {
      LsmStore store{replay_opts, device};
      run_puts(store, n, /*sync_every=*/64);
    }
    std::uint64_t replayed = 0;
    const double s = best_seconds(reps, [&] {
      LsmStore recovered{replay_opts, device};
      replayed = recovered.recovery_info().wal_records_replayed;
    });
    const double per_s = replayed / s;
    std::printf("  %-10zu %12.3f %14.0f\n", n, s * 1e3, per_s);
    const std::string tag = "recovery.wal" + std::to_string(n);
    report.metric(tag + ".ms", s * 1e3);
    report.metric(tag + ".records_per_s", per_s);
  }

  // --- 3. crash-point + bit-flip fuzz sweep --------------------------------
  std::printf("\n  crash-point fuzz (every device-op boundary x tear "
              "offsets, model oracle)\n");
  std::printf("  %-22s %8s %8s %8s %8s %s\n", "mode", "points", "recov",
              "losses", "prefix", "pass");

  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  CrashFuzzResult crash_total;
  CrashFuzzResult lying_total;
  CrashFuzzResult flip_total;
  const auto fuzz_t0 = std::chrono::steady_clock::now();
  for (const std::uint64_t seed : seeds) {
    CrashFuzzConfig cfg;
    cfg.seed = seed;
    if (quick) {
      cfg.ops = 120;
      cfg.key_space = 32;
      cfg.tears = {0, 3, 17};
    }
    crash_total.merge(rb::storage::run_crash_fuzz(cfg));

    CrashFuzzConfig lying = cfg;
    lying.drop_sync_rate = 0.3;  // the disk lies about fsync
    lying_total.merge(rb::storage::run_crash_fuzz(lying));

    CrashFuzzConfig flips = cfg;
    flips.flip_stride = quick ? 53 : 23;
    flip_total.merge(rb::storage::run_bitflip_fuzz(flips));
  }
  const double fuzz_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    fuzz_t0)
          .count();

  const auto print_fuzz = [](const char* mode, const CrashFuzzResult& r) {
    std::printf("  %-22s %8llu %8llu %8llu %8llu %s\n", mode,
                static_cast<unsigned long long>(r.crash_points),
                static_cast<unsigned long long>(r.recoveries),
                static_cast<unsigned long long>(r.acked_losses),
                static_cast<unsigned long long>(r.prefix_violations),
                r.pass() ? "yes" : "NO");
  };
  print_fuzz("crash-points", crash_total);
  print_fuzz("crash-points+lying", lying_total);
  std::printf("  %-22s %8llu flips: %llu detected, %llu safe drops, "
              "%llu missed, %llu served -> %s\n", "bit-flips",
              static_cast<unsigned long long>(flip_total.flip_points),
              static_cast<unsigned long long>(flip_total.corruption_detected),
              static_cast<unsigned long long>(flip_total.safe_tail_drops),
              static_cast<unsigned long long>(flip_total.corruption_missed),
              static_cast<unsigned long long>(flip_total.corruption_served),
              flip_total.pass() ? "pass" : "FAIL");
  std::printf("  fuzz sweep: %zu seeds, %.2f s\n", seeds.size(), fuzz_s);

  const std::uint64_t total_points =
      crash_total.crash_points + lying_total.crash_points;
  const std::uint64_t point_floor = 1000;
  const bool coverage_ok = crash_total.crash_points >= point_floor;
  const bool pass = crash_total.pass() && lying_total.pass() &&
                    flip_total.pass() && coverage_ok &&
                    flip_total.flip_points > 0 &&
                    flip_total.corruption_detected > 0;

  if (!coverage_ok) {
    std::printf("  FAIL: only %llu crash points (floor %llu)\n",
                static_cast<unsigned long long>(crash_total.crash_points),
                static_cast<unsigned long long>(point_floor));
  }
  if (!pass && coverage_ok) {
    std::printf("  FAIL: a durability/consistency invariant was violated\n");
  }

  report.metric("crash_points", static_cast<double>(crash_total.crash_points));
  report.metric("crash_points_total", static_cast<double>(total_points));
  report.metric("fuzz.recoveries",
                static_cast<double>(crash_total.recoveries +
                                    lying_total.recoveries));
  report.metric("fuzz.acked_losses",
                static_cast<double>(crash_total.acked_losses));
  report.metric("fuzz.prefix_violations",
                static_cast<double>(crash_total.prefix_violations +
                                    lying_total.prefix_violations));
  report.metric("fuzz.reopen_mismatches",
                static_cast<double>(crash_total.reopen_mismatches +
                                    lying_total.reopen_mismatches));
  report.metric("fuzz.unexpected_corruption",
                static_cast<double>(crash_total.unexpected_corruption));
  report.metric("fuzz.flip_points",
                static_cast<double>(flip_total.flip_points));
  report.metric("fuzz.corruption_detected",
                static_cast<double>(flip_total.corruption_detected));
  report.metric("fuzz.safe_tail_drops",
                static_cast<double>(flip_total.safe_tail_drops));
  report.metric("fuzz.corruption_missed",
                static_cast<double>(flip_total.corruption_missed));
  report.metric("fuzz.corruption_served",
                static_cast<double>(flip_total.corruption_served));
  report.metric("fuzz_seconds", fuzz_s);
  report.metric("pass", pass);
  report.write();
  return pass ? 0 : 1;
}

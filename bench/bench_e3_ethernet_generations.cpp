// E3 — Ethernet generation drives shuffle/job time and network capex
// (paper Secs IV.A.1/IV.A.3, Recs 1 and 3).
//
// A fixed leaf-spine cluster runs an all-to-all shuffle at every generation
// (10 -> 400GbE) under each procurement model. Expected shape: shuffle time
// scales ~1/bandwidth; $/Gbps falls each generation even as per-port price
// rises; bare-metal procurement cuts capex ~2-3x vs integrated vendors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "net/fabric.hpp"
#include "net/switch_cost.hpp"

int main(int argc, char** argv) {
  using namespace rb;
  // --hosts H scales hosts-per-leaf (default 8 → 32 hosts total), so the
  // shuffle grows quadratically in flow count without changing the fabric.
  int hosts_per_leaf = 8;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--hosts") == 0) {
      hosts_per_leaf = std::atoi(argv[i + 1]);
    }
  }
  if (hosts_per_leaf < 1) hosts_per_leaf = 8;
  bench::heading("E3", "Shuffle time and network cost across Ethernet generations");
  bench::Report report{"e3_ethernet_generations", argc, argv};
  report.config("bytes_per_pair", std::uint64_t{64 * sim::kMiB});
  report.config("topology",
                "leaf_spine(4,6," + std::to_string(hosts_per_leaf) + ")");
  report.config("hosts_per_leaf", std::uint64_t(hosts_per_leaf));

  constexpr sim::Bytes kBytesPerPair = 64 * sim::kMiB;
  std::printf("%-8s %12s %10s %14s %14s %14s\n", "gen", "shuffle(s)",
              "$/Gbps", "vendor capex", "baremetal", "whitebox");

  for (const auto gen :
       {net::EthernetGen::k10G, net::EthernetGen::k40G,
        net::EthernetGen::k100G, net::EthernetGen::k400G}) {
    net::FabricParams params;
    params.host_gen = gen;
    params.fabric_gen = gen;
    const auto topo = net::make_leaf_spine(4, 6, hosts_per_leaf, params);
    const auto makespan = net::simulate_shuffle(topo, kBytesPerPair);
    const double per_gbps =
        net::port_cost(gen) / (net::rate_of(gen) / sim::kGbps);
    const auto vendor = net::network_cost(
        topo, net::ProcurementModel::kVendorIntegrated, gen);
    const auto bare =
        net::network_cost(topo, net::ProcurementModel::kBareMetal, gen);
    const auto white =
        net::network_cost(topo, net::ProcurementModel::kWhiteBox, gen);
    std::printf("%-8s %12.3f %10.2f %14.0f %14.0f %14.0f\n",
                net::to_string(gen).c_str(), sim::to_seconds(makespan),
                per_gbps, vendor.capex, bare.capex, white.capex);
    const std::string g = net::to_string(gen);
    report.metric("shuffle_seconds." + g, sim::to_seconds(makespan));
    report.metric("dollars_per_gbps." + g, per_gbps);
    report.metric("capex_vendor." + g, vendor.capex);
    report.metric("capex_baremetal." + g, bare.capex);
    report.metric("capex_whitebox." + g, white.capex);
  }
  bench::note("paper shape: each generation ~linearly shortens shuffles;");
  bench::note("bare-metal/white-box procurement undercuts vendor-integrated.");
  return 0;
}

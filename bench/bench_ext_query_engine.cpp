// EXT-QUERY — Vectorized push-based engine vs the row-at-a-time reference
// interpreter on a TPC-H-flavored join → filter → aggregate → top-k
// workload (Rec 10: accelerated building blocks inside a framework).
//
// Sweeps batch size, join order, and table scale; every cell cross-checks
// that the vectorized result is byte-identical to Query::run(), and one
// case runs the same plan over an LSM-backed scan (storage substrate
// instead of a resident table). In --quick mode the bench gates on the
// vectorized path being >= 3x faster than the interpreter on the
// join-aggregate query at the largest quick scale and exits 1 on failure
// (report-only under sanitizer builds, whose per-access overhead distorts
// ratios).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "query/exec/lsm_table.hpp"
#include "query/exec/plan.hpp"
#include "query/table.hpp"
#include "storage/lsm.hpp"
#include "workloads/generators.hpp"

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

using rb::query::Aggregate;
using rb::query::Query;
using rb::query::Table;

struct Tables {
  Table orders;     // order_id, customer
  Table lineitems;  // order_id, amount
};

Tables make_tables(std::size_t n_orders, std::uint64_t seed) {
  const auto rel = rb::workloads::order_tables(n_orders, 4.0, 0.8, seed);
  Tables t;
  std::vector<std::int64_t> oid, cust;
  for (const auto& r : rel.orders) {
    oid.push_back(static_cast<std::int64_t>(r.key));
    cust.push_back(static_cast<std::int64_t>(r.payload));
  }
  t.orders.add_int_column("order_id", std::move(oid));
  t.orders.add_int_column("customer", std::move(cust));
  std::vector<std::int64_t> lid, amount;
  for (const auto& r : rel.lineitems) {
    lid.push_back(static_cast<std::int64_t>(r.key));
    amount.push_back(static_cast<std::int64_t>(r.payload));
  }
  t.lineitems.add_int_column("order_id", std::move(lid));
  t.lineitems.add_int_column("amount", std::move(amount));
  return t;
}

/// The benchmark query: revenue by customer over large-ticket lineitems,
/// top 10. `items_probe` picks the join order (lineitems probing an orders
/// build, or the reverse).
Query make_query(const Tables& t, bool items_probe) {
  Query q = items_probe ? Query(t.lineitems) : Query(t.orders);
  q.join(items_probe ? t.orders : t.lineitems, "order_id", "order_id")
      // Range form so the vectorized engine takes the SIMD selection path;
      // the interpreter evaluates the identical lo <= a < hi predicate.
      .where_between("amount", 20'000,
                     std::numeric_limits<std::int64_t>::max())
      .group_by("customer", Aggregate::kSum, "amount", "revenue")
      .order_by("revenue", true)
      .limit(10);
  return q;
}

bool tables_equal(const Table& a, const Table& b) {
  if (a.row_count() != b.row_count()) return false;
  if (a.column_names() != b.column_names()) return false;
  for (const auto& col : a.column_names()) {
    if (a.column_type(col) != b.column_type(col)) return false;
    if (a.column_type(col) == rb::query::ColumnType::kInt) {
      if (a.ints(col) != b.ints(col)) return false;
    } else {
      if (a.strings(col) != b.strings(col)) return false;
    }
  }
  return true;
}

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  rb::bench::Report report{"ext_query_engine", argc, argv};
  report.config("quick", quick);
  report.config("sanitized", kSanitized);

  rb::bench::heading("EXT-QUERY",
                     "vectorized push-based engine vs row-at-a-time "
                     "interpreter (join->filter->aggregate->topk)");

  const std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{2'000, 20'000}
            : std::vector<std::size_t>{2'000, 20'000, 100'000};
  const std::vector<std::size_t> batch_sizes{256, 1024, 4096};
  const int reps = quick ? 3 : 5;

  std::printf(
      "  %-9s %-11s %-6s %10s %12s %9s %s\n", "orders", "join-order",
      "batch", "fluent-ms", "vector-ms", "speedup", "identical");

  bool all_identical = true;
  double gate_speedup = 0.0;  // largest scale, items-probe, batch 1024

  for (const std::size_t n_orders : scales) {
    const auto tables = make_tables(n_orders, /*seed=*/42 + n_orders);
    for (const bool items_probe : {true, false}) {
      const Query query = make_query(tables, items_probe);
      const Table reference = query.run();
      const double fluent_s = best_seconds(reps, [&query] {
        const Table t = query.run();
        if (t.row_count() > 10) std::abort();  // keep the result live
      });
      for (const std::size_t batch : batch_sizes) {
        const auto plan = rb::query::exec::compile(query);
        rb::query::exec::ExecOptions opts;
        opts.batch_size = batch;
        const bool identical = tables_equal(plan.run(opts), reference);
        all_identical = all_identical && identical;
        const double vec_s = best_seconds(reps, [&plan, &opts] {
          const Table t = plan.run(opts);
          if (t.row_count() > 10) std::abort();
        });
        const double speedup = fluent_s / vec_s;
        if (n_orders == scales.back() && items_probe && batch == 1024) {
          gate_speedup = speedup;
        }
        std::printf("  %-9zu %-11s %-6zu %10.2f %12.2f %8.2fx %s\n",
                    n_orders, items_probe ? "items|orders" : "orders|items",
                    batch, fluent_s * 1e3, vec_s * 1e3, speedup,
                    identical ? "yes" : "NO");
        const std::string tag =
            std::to_string(n_orders) + "." +
            (items_probe ? "items_probe" : "orders_probe") + ".b" +
            std::to_string(batch);
        report.metric(tag + ".fluent_ms", fluent_s * 1e3);
        report.metric(tag + ".vector_ms", vec_s * 1e3);
        report.metric(tag + ".speedup", speedup);
      }
    }
  }

  // LSM-backed scan: same chain over the storage substrate.
  bool lsm_identical = true;
  {
    const auto tables = make_tables(scales.front(), /*seed=*/7);
    rb::storage::LsmOptions lsm_opts;
    lsm_opts.memtable_bytes = 1 << 16;  // forces SSTable flushes
    rb::storage::LsmStore store{lsm_opts};
    rb::query::exec::store_table(store, "lineitems", tables.lineitems);
    auto plan =
        rb::query::exec::PlanBuilder(store, "lineitems")
            .join(tables.orders, "order_id", "order_id")
            .filter_between("amount", 20'000,
                            std::numeric_limits<std::int64_t>::max())
            .group_by("customer", Aggregate::kSum, "amount", "revenue")
            .order_by("revenue", true)
            .limit(10)
            .build();
    const Table reference = make_query(tables, /*items_probe=*/true).run();
    lsm_identical = tables_equal(plan.run(), reference);
    const double lsm_s = best_seconds(reps, [&plan] { (void)plan.run(); });
    std::printf("  lsm-backed scan (%zu orders): %.2f ms, identical: %s\n",
                scales.front(), lsm_s * 1e3, lsm_identical ? "yes" : "NO");
    report.metric("lsm.vector_ms", lsm_s * 1e3);
  }

  const bool gate_ok = !quick || gate_speedup >= 3.0 || kSanitized;
  const bool pass = all_identical && lsm_identical && gate_ok;

  std::printf("\n  join-aggregate speedup at largest scale: %.2fx "
              "(quick gate: >=3x)\n",
              gate_speedup);
  if (!all_identical || !lsm_identical) {
    std::printf("  FAIL: vectorized results diverged from the reference "
                "interpreter\n");
  }
  if (!gate_ok) {
    std::printf("  PERF REGRESSION: vectorized path only %.2fx over "
                "row-at-a-time (expected >=3x)\n",
                gate_speedup);
  }
  if (kSanitized && quick && gate_speedup < 3.0) {
    std::printf("  (sanitized build: speed gate is report-only)\n");
  }

  report.metric("speedup_join_agg", gate_speedup);
  report.metric("results_identical", all_identical);
  report.metric("lsm_identical", lsm_identical);
  report.metric("pass", pass);
  report.write();
  return pass ? 0 : 1;
}

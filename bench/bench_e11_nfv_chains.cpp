// E11 — NFV "allows for the implementation of security, firewalls, routing
// schemes and other functions separately ... via software allowing for
// increased control, flexibility and scalability" (paper Sec IV.A.2).
//
// Service chains of growing length are evaluated as software NFV on one
// commodity server and as fixed-function appliance chains. Expected shape:
// appliances keep line-rate throughput but capex explodes with chain
// length; NFV throughput degrades 1/length at ~10x lower capex, and its
// latency inflates near saturation.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "net/nfv.hpp"

int main() {
  using namespace rb;
  bench::heading("E11", "NFV service chains vs fixed-function appliances");

  using FK = net::FunctionKind;
  const std::vector<std::vector<FK>> chains = {
      {FK::kFirewall},
      {FK::kFirewall, FK::kNat},
      {FK::kFirewall, FK::kNat, FK::kLoadBalancer},
      {FK::kFirewall, FK::kNat, FK::kLoadBalancer, FK::kVpnEncrypt},
      {FK::kFirewall, FK::kNat, FK::kLoadBalancer, FK::kVpnEncrypt,
       FK::kDeepPacketInspection},
  };

  std::printf("%-8s | %12s %12s %10s | %12s %12s %10s\n", "chain",
              "nfv Mpps", "nfv lat(us)", "nfv $", "appl Mpps",
              "appl lat(us)", "appl $");
  for (const auto& chain : chains) {
    const auto idle_nfv = net::evaluate_nfv_chain(chain, 0.0);
    const auto nfv =
        net::evaluate_nfv_chain(chain, idle_nfv.max_throughput_pps * 0.7);
    const auto appl = net::evaluate_appliance_chain(
        chain, idle_nfv.max_throughput_pps * 0.7);
    std::printf("%-8zu | %12.2f %12.2f %10.0f | %12.2f %12.2f %10.0f\n",
                chain.size(), nfv.max_throughput_pps / 1e6,
                sim::to_microseconds(nfv.latency), nfv.capex,
                appl.max_throughput_pps / 1e6,
                sim::to_microseconds(appl.latency), appl.capex);
  }

  std::printf("\n-- NFV latency vs offered load (4-function chain) --\n");
  const auto& chain = chains[3];
  const auto cap = net::evaluate_nfv_chain(chain, 0.0).max_throughput_pps;
  std::printf("%-10s %14s\n", "load", "latency(us)");
  for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9, 0.95}) {
    const auto out = net::evaluate_nfv_chain(chain, cap * load);
    std::printf("%-10.2f %14.2f\n", load, sim::to_microseconds(out.latency));
  }
  bench::note("paper shape: software NFV trades peak throughput for ~10x");
  bench::note("lower capex and per-function flexibility.");
  return 0;
}

// E6 — System-in-Package vs monolithic SoC (paper Sec IV.B.3, EUROSERVER):
// "market-specific products can be built from commodity compute chiplets
// with specialized chiplets ... without designing an entire SoC", giving
// "smaller companies a better opportunity to compete".
//
// Unit cost of a 400 mm^2-class server part at volumes 10k..10M, as (a) a
// monolithic leading-edge SoC and (b) a SiP of three chiplets (leading-edge
// compute + mature-node I/O and accelerator, the I/O chiplet reused across
// products). Expected shape: SiP wins at SME volumes (NRE amortisation +
// yield), SoC only competitive at very high volume.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "node/integration.hpp"

int main() {
  using namespace rb;
  bench::heading("E6", "Silicon economics: monolithic SoC vs SiP chiplets");

  const auto soc_process = node::leading_edge_16nm();
  const std::vector<node::ChipletSpec> chiplets = {
      {{"compute", 150.0, node::leading_edge_16nm()}, 0.0},
      {{"io", 120.0, node::mature_28nm()}, 1e7},   // reused commodity part
      {{"accel", 130.0, node::mature_28nm()}, 1e6},
  };
  constexpr double kSocArea = 400.0;

  std::printf("yield(16nm, 400mm2) = %.2f; yield(16nm, 150mm2) = %.2f; "
              "yield(28nm, 130mm2) = %.2f\n\n",
              node::die_yield(kSocArea, soc_process),
              node::die_yield(150.0, soc_process),
              node::die_yield(130.0, node::mature_28nm()));

  std::printf("%-10s | %10s %10s %10s | %10s %10s %10s\n", "volume",
              "soc si", "soc nre", "soc total", "sip si+pkg", "sip nre",
              "sip total");
  for (const double volume : {1e4, 5e4, 1e5, 5e5, 1e6, 1e7}) {
    const auto soc = node::soc_unit_cost(kSocArea, soc_process, volume);
    const auto sip = node::sip_unit_cost(chiplets, volume);
    std::printf("%-10.0f | %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f\n",
                volume, soc.silicon, soc.nre_amortized, soc.total(),
                sip.silicon + sip.packaging, sip.nre_amortized, sip.total());
  }
  const double crossover =
      node::soc_sip_crossover_volume(kSocArea, soc_process, chiplets);
  std::printf("\nSoC/SiP crossover volume: %.2e units\n", crossover);
  bench::note("paper shape: SiP cheaper at SME volumes; monolithic SoC needs");
  bench::note("vertical-scale volume to amortize leading-edge NRE and yield.");
  return 0;
}

// E4 — SDN "can make 10,000 switches look like one" (paper Sec IV.A.2,
// quoting Google [17]).
//
// One network-wide policy change is applied to fleets of 10..10,000
// switches under (a) box-by-box distributed management and (b) a central
// SDN controller. Expected shape: admin operations and completion time grow
// linearly for per-switch management and stay near-constant for SDN; the
// probability of at least one misconfiguration approaches 1 for manual
// fleets and stays negligible for the controller.

#include <cstdio>

#include "bench_util.hpp"
#include "net/sdn.hpp"

int main() {
  using namespace rb;
  bench::heading("E4", "Control-plane scaling: per-switch management vs SDN");

  std::printf("%-10s | %12s %12s %10s | %12s %12s %10s\n", "switches",
              "manual ops", "manual(h)", "P(err)", "sdn ops", "sdn(s)",
              "P(err)");
  for (const std::uint64_t n : {10ULL, 100ULL, 1000ULL, 10'000ULL}) {
    const int diameter = n <= 100 ? 3 : 5;
    const auto manual = net::apply_policy_change(
        net::ControlPlane::kDistributedPerSwitch, n, diameter);
    const auto sdn = net::apply_policy_change(
        net::ControlPlane::kSdnCentral, n, diameter);
    std::printf("%-10llu | %12.0f %12.2f %10.3f | %12.0f %12.2f %10.5f\n",
                static_cast<unsigned long long>(n), manual.admin_operations,
                sim::to_seconds(manual.completion_time) / 3600.0,
                manual.error_probability, sdn.admin_operations,
                sim::to_seconds(sdn.completion_time),
                sdn.error_probability);
  }
  bench::note("paper shape: O(N) human effort vs O(1); at 10k switches the");
  bench::note("controller finishes in seconds where manual takes days.");
  return 0;
}
